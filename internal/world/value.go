package world

// Value is an object's attribute tuple. The paper models every
// participant as "a high-dimensional tuple" with a bounded rate of change
// per attribute (Section III-D): spatial attributes move at most at the
// maximum velocity, health by at most the maximum damage, and so on. A
// flat float64 tuple captures that model; the meaning of each slot is
// fixed by the application schema (see package manhattan for an example).
type Value []float64

// Clone returns an independent copy of the value. A nil value clones to
// nil, preserving "object absent" semantics.
func (v Value) Clone() Value {
	if v == nil {
		return nil
	}
	c := make(Value, len(v))
	copy(c, v)
	return c
}

// Equal reports whether two values are attribute-for-attribute identical.
// NaN attributes never compare equal, matching float64 semantics; the
// protocols never store NaN.
func (v Value) Equal(o Value) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}
