package world

import "testing"

func TestStateBasics(t *testing.T) {
	s := NewState()
	if _, ok := s.Get(1); ok {
		t.Fatal("empty state has object 1")
	}
	s.Set(1, Value{1, 2})
	s.Set(2, Value{3})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	v, ok := s.Get(1)
	if !ok || !v.Equal(Value{1, 2}) {
		t.Fatalf("Get(1) = %v, %v", v, ok)
	}
	s.Delete(1)
	if _, ok := s.Get(1); ok {
		t.Fatal("deleted object still present")
	}
	if !s.IDs().Equal(NewIDSet(2)) {
		t.Fatalf("IDs = %v", s.IDs())
	}
}

func TestStateSetCopies(t *testing.T) {
	s := NewState()
	v := Value{1, 2}
	s.Set(1, v)
	v[0] = 99
	got, _ := s.Get(1)
	if got[0] != 1 {
		t.Fatal("Set aliased caller's slice")
	}
}

func TestStateSetInPlace(t *testing.T) {
	s := NewState()
	s.Set(1, Value{1, 2})
	buf, _ := s.Get(1)

	// Same length: the stored buffer is reused and the caller's slice is
	// copied, not aliased.
	v := Value{3, 4}
	s.SetInPlace(1, v)
	v[0] = 99
	got, _ := s.Get(1)
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("in-place overwrite got %v", got)
	}
	if &got[0] != &buf[0] {
		t.Fatal("same-length SetInPlace did not reuse the stored buffer")
	}

	// Length change and fresh id fall back to a cloned store.
	s.SetInPlace(1, Value{5})
	if got, _ := s.Get(1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("length-changing SetInPlace got %v", got)
	}
	w := Value{6}
	s.SetInPlace(2, w)
	w[0] = 99
	if got, _ := s.Get(2); got[0] != 6 {
		t.Fatal("fresh-id SetInPlace aliased caller's slice")
	}
}

func TestStateClone(t *testing.T) {
	s := NewState()
	s.Set(1, Value{1})
	c := s.Clone()
	c.Set(1, Value{2})
	c.Set(3, Value{3})
	if v, _ := s.Get(1); v[0] != 1 {
		t.Fatal("clone write leaked into original")
	}
	if s.Len() != 1 {
		t.Fatal("clone insert leaked into original")
	}
}

func TestStateCopyFrom(t *testing.T) {
	dst := NewState()
	dst.Set(1, Value{0})
	dst.Set(2, Value{0})
	dst.Set(3, Value{0})
	src := NewState()
	src.Set(1, Value{10})
	// 2 is absent in src: CopyFrom must delete it in dst.
	src.Set(3, Value{30})
	dst.CopyFrom(src, NewIDSet(1, 2))
	if v, _ := dst.Get(1); v[0] != 10 {
		t.Fatalf("object 1 = %v, want 10", v)
	}
	if _, ok := dst.Get(2); ok {
		t.Fatal("object 2 should have been deleted")
	}
	if v, _ := dst.Get(3); v[0] != 0 {
		t.Fatal("object 3 outside id set was touched")
	}
}

func TestStateDigestAndEqual(t *testing.T) {
	a := NewState()
	b := NewState()
	a.Set(1, Value{1, 2})
	a.Set(2, Value{3})
	b.Set(2, Value{3})
	b.Set(1, Value{1, 2})
	if a.Digest() != b.Digest() {
		t.Fatal("digest depends on insertion order")
	}
	if !a.Equal(b) {
		t.Fatal("equal states not Equal")
	}
	b.Set(1, Value{1, 3})
	if a.Digest() == b.Digest() {
		t.Fatal("different states share digest")
	}
	if a.Equal(b) {
		t.Fatal("different states Equal")
	}
	b.Set(1, Value{1, 2})
	b.Set(9, Value{})
	if a.Equal(b) {
		t.Fatal("states with different object counts Equal")
	}
}

func TestValueCloneEqual(t *testing.T) {
	v := Value{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone aliases")
	}
	if Value(nil).Clone() != nil {
		t.Fatal("nil Clone not nil")
	}
	if !Value(nil).Equal(Value{}) {
		t.Fatal("nil and empty should be Equal (both zero-length)")
	}
	if v.Equal(Value{1}) {
		t.Fatal("length mismatch Equal")
	}
	if v.Equal(Value{1, 3}) {
		t.Fatal("value mismatch Equal")
	}
}
