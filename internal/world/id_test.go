package world

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIDSetSortsAndDedups(t *testing.T) {
	s := NewIDSet(5, 1, 3, 1, 5, 2)
	want := IDSet{1, 2, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("NewIDSet = %v, want %v", s, want)
	}
}

func TestIDSetContains(t *testing.T) {
	s := NewIDSet(2, 4, 6)
	for _, id := range []ObjectID{2, 4, 6} {
		if !s.Contains(id) {
			t.Fatalf("Contains(%d) = false", id)
		}
	}
	for _, id := range []ObjectID{0, 1, 3, 5, 7} {
		if s.Contains(id) {
			t.Fatalf("Contains(%d) = true", id)
		}
	}
	if IDSet(nil).Contains(1) {
		t.Fatal("nil set contains 1")
	}
}

func TestIDSetIntersects(t *testing.T) {
	cases := []struct {
		a, b IDSet
		want bool
	}{
		{NewIDSet(1, 2, 3), NewIDSet(3, 4), true},
		{NewIDSet(1, 2, 3), NewIDSet(4, 5), false},
		{NewIDSet(), NewIDSet(1), false},
		{nil, nil, false},
		{NewIDSet(10), NewIDSet(10), true},
		{NewIDSet(1, 5, 9), NewIDSet(2, 5, 8), true},
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%v ∩ %v ≠ ∅ = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("intersects not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestIDSetUnionSubtractIntersect(t *testing.T) {
	a := NewIDSet(1, 3, 5, 7)
	b := NewIDSet(3, 4, 7, 8)
	if got := a.Union(b); !got.Equal(NewIDSet(1, 3, 4, 5, 7, 8)) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Subtract(b); !got.Equal(NewIDSet(1, 5)) {
		t.Fatalf("Subtract = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewIDSet(3, 7)) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Subtract(a); got.Len() != 0 {
		t.Fatalf("a \\ a = %v", got)
	}
	if got := IDSet(nil).Union(b); !got.Equal(b) {
		t.Fatalf("nil ∪ b = %v", got)
	}
}

func TestIDSetClone(t *testing.T) {
	a := NewIDSet(1, 2)
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases original")
	}
	if IDSet(nil).Clone() != nil {
		t.Fatal("nil Clone not nil")
	}
}

// randSet builds a random IDSet over a small universe so intersections are
// common.
func randSet(rng *rand.Rand) IDSet {
	n := rng.Intn(12)
	ids := make([]ObjectID, n)
	for i := range ids {
		ids[i] = ObjectID(rng.Intn(20))
	}
	return NewIDSet(ids...)
}

func TestIDSetAlgebraProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSet(rng), randSet(rng)

		union := a.Union(b)
		inter := a.Intersect(b)
		diff := a.Subtract(b)

		// |A ∪ B| = |A| + |B| − |A ∩ B|
		if union.Len() != a.Len()+b.Len()-inter.Len() {
			return false
		}
		// A \ B and A ∩ B partition A.
		if diff.Len()+inter.Len() != a.Len() {
			return false
		}
		// Intersects agrees with Intersect.
		if a.Intersects(b) != (inter.Len() > 0) {
			return false
		}
		// Every member of the union is in A or B; membership is sane.
		for _, id := range union {
			if !a.Contains(id) && !b.Contains(id) {
				return false
			}
		}
		for _, id := range diff {
			if b.Contains(id) || !a.Contains(id) {
				return false
			}
		}
		// (A \ B) ∪ (A ∩ B) = A
		if !diff.Union(inter).Equal(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
