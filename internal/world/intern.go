package world

// Interner assigns dense, monotonically increasing indices to ObjectIDs.
//
// The server's analysis hot path (Algorithms 6 and 7) is a loop of set
// operations over object ids. ObjectIDs are sparse 64-bit values, so
// set membership over them needs either sorted-slice merges (the IDSet
// operations, which allocate a fresh slice per step) or hashing. Interned
// indices are dense: membership becomes one array access, and a per-walk
// scratch set (ScratchSet) gives Union/Subtract/Intersects with zero
// allocation and O(1) amortized cost per element.
//
// Indices are never reused. The interner is owned by a single engine
// goroutine; concurrent readers are safe only while no Intern call can
// run (the parallel push scheduler relies on this: all ids are interned
// at enqueue time, before any fan-out).
type Interner struct {
	idx map[ObjectID]uint32
	ids []ObjectID // dense index -> ObjectID
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{idx: make(map[ObjectID]uint32)}
}

// Intern returns the dense index of id, assigning the next free index on
// first sight.
func (it *Interner) Intern(id ObjectID) uint32 {
	if i, ok := it.idx[id]; ok {
		return i
	}
	i := uint32(len(it.ids))
	it.idx[id] = i
	it.ids = append(it.ids, id)
	return i
}

// Lookup returns the dense index of id without assigning one.
func (it *Interner) Lookup(id ObjectID) (uint32, bool) {
	i, ok := it.idx[id]
	return i, ok
}

// ID returns the ObjectID at dense index i.
func (it *Interner) ID(i uint32) ObjectID { return it.ids[i] }

// Len reports how many distinct ObjectIDs have been interned.
func (it *Interner) Len() int { return len(it.ids) }

// InternSet appends the dense indices of every id in s to dst and
// returns it. The result preserves s's (sorted) order.
func (it *Interner) InternSet(s IDSet, dst []uint32) []uint32 {
	for _, id := range s {
		dst = append(dst, it.Intern(id))
	}
	return dst
}

// ScratchSet is a set of dense indices with O(1) clear: membership is
// "stamp[i] == epoch", so Reset just bumps the epoch instead of touching
// memory. One ScratchSet per walk (or per worker) makes the Algorithm 6/7
// chain-set updates — S ∪ RS, S − WS, S ∩ WS ≠ ∅ — branch-light array
// ops with no per-step allocation, replacing the sorted-slice IDSet
// merges on the hot path.
//
// Reset must be called before the first use of an epoch (the zero value
// needs one Reset before any Add).
type ScratchSet struct {
	stamp []uint64 // stamp[i] == epoch ⇔ i is a member
	added []uint64 // added[i] == epoch ⇔ i was appended to members this epoch
	epoch uint64
	// members records every index added this epoch, in first-add order,
	// so the final set can be materialized without scanning the universe.
	// Removed members stay in the list (their stamp no longer matches).
	members []uint32
}

// Reset empties the set and ensures capacity for dense indices < n.
func (s *ScratchSet) Reset(n int) {
	s.Grow(n)
	s.epoch++
	s.members = s.members[:0]
}

// Grow ensures capacity for dense indices < n without clearing the
// membership. Long-lived sets (the client's divergence set) call it as
// the interner grows, between Resets.
func (s *ScratchSet) Grow(n int) {
	if n <= len(s.stamp) {
		return
	}
	grown := make([]uint64, n+n/2)
	copy(grown, s.stamp)
	s.stamp = grown
	grownA := make([]uint64, len(grown))
	copy(grownA, s.added)
	s.added = grownA
}

// Add inserts i, reporting whether it was absent.
func (s *ScratchSet) Add(i uint32) bool {
	if s.stamp[i] == s.epoch {
		return false
	}
	s.stamp[i] = s.epoch
	if s.added[i] != s.epoch {
		s.added[i] = s.epoch
		s.members = append(s.members, i)
	}
	return true
}

// Remove deletes i if present.
func (s *ScratchSet) Remove(i uint32) {
	if s.stamp[i] == s.epoch {
		s.stamp[i] = 0
	}
}

// Contains reports membership of i.
func (s *ScratchSet) Contains(i uint32) bool {
	return int(i) < len(s.stamp) && s.stamp[i] == s.epoch
}

// AddAll inserts every index in ids.
func (s *ScratchSet) AddAll(ids []uint32) {
	for _, i := range ids {
		s.Add(i)
	}
}

// RemoveAll deletes every index in ids — the S ← S − WS(a) step.
func (s *ScratchSet) RemoveAll(ids []uint32) {
	for _, i := range ids {
		s.Remove(i)
	}
}

// ContainsAny reports whether any index in ids is a member — the
// WS(a) ∩ S ≠ ∅ test of Algorithms 6 and 7.
func (s *ScratchSet) ContainsAny(ids []uint32) bool {
	for _, i := range ids {
		if s.stamp[i] == s.epoch {
			return true
		}
	}
	return false
}

// Len reports the number of members.
func (s *ScratchSet) Len() int {
	n := 0
	for _, i := range s.members {
		if s.stamp[i] == s.epoch {
			n++
		}
	}
	return n
}

// AppendMembers appends the current members to dst and returns it, in
// first-add order, skipping removed indices.
func (s *ScratchSet) AppendMembers(dst []uint32) []uint32 {
	for _, i := range s.members {
		if s.stamp[i] == s.epoch {
			dst = append(dst, i)
		}
	}
	return dst
}

// CountedSet is a multiset over dense indices: Inc and Dec adjust an
// index's multiplicity and Contains tests whether it is positive. The
// client engine maintains WS(Q) — the union of the declared write sets
// of all queued actions — with one: each action Incs its write set on
// enqueue and Decs it on resolution, replacing the O(k²) sorted-slice
// Union rebuild that Algorithm 3 membership tests used to pay per
// remote envelope.
type CountedSet struct {
	count    []uint32
	distinct int
}

// Grow ensures capacity for dense indices < n.
func (c *CountedSet) Grow(n int) {
	if n <= len(c.count) {
		return
	}
	grown := make([]uint32, n+n/2)
	copy(grown, c.count)
	c.count = grown
}

// Inc raises the multiplicity of i by one.
func (c *CountedSet) Inc(i uint32) {
	if c.count[i] == 0 {
		c.distinct++
	}
	c.count[i]++
}

// Dec lowers the multiplicity of i by one. Decrementing an absent index
// panics: it means enqueue/resolve bookkeeping got out of sync.
func (c *CountedSet) Dec(i uint32) {
	if c.count[i] == 0 {
		panic("world: CountedSet.Dec of absent index")
	}
	c.count[i]--
	if c.count[i] == 0 {
		c.distinct--
	}
}

// Contains reports whether i has positive multiplicity.
func (c *CountedSet) Contains(i uint32) bool {
	return int(i) < len(c.count) && c.count[i] > 0
}

// Distinct reports how many indices have positive multiplicity.
func (c *CountedSet) Distinct() int { return c.distinct }
