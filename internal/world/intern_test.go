package world

import (
	"math/rand"
	"slices"
	"testing"
)

func TestInternerAssignsDenseStableIndices(t *testing.T) {
	it := NewInterner()
	ids := []ObjectID{42, 7, 42, 1 << 40, 7, 3}
	want := []uint32{0, 1, 0, 2, 1, 3}
	for i, id := range ids {
		if got := it.Intern(id); got != want[i] {
			t.Fatalf("Intern(%d) = %d, want %d", id, got, want[i])
		}
	}
	if it.Len() != 4 {
		t.Fatalf("Len = %d, want 4", it.Len())
	}
	for i := 0; i < it.Len(); i++ {
		id := it.ID(uint32(i))
		if got, ok := it.Lookup(id); !ok || got != uint32(i) {
			t.Fatalf("Lookup(ID(%d)) = %d,%v", i, got, ok)
		}
	}
	if _, ok := it.Lookup(999); ok {
		t.Fatal("Lookup of never-interned id succeeded")
	}

	set := NewIDSet(3, 7, 42)
	dense := it.InternSet(set, nil)
	if len(dense) != 3 {
		t.Fatalf("InternSet returned %d indices", len(dense))
	}
	for i, d := range dense {
		if it.ID(d) != set[i] {
			t.Fatalf("InternSet order broken at %d: ID(%d)=%d, want %d", i, d, it.ID(d), set[i])
		}
	}
}

// TestScratchSetMatchesIDSet is the property test behind the engine
// rewrite: a random program of Union/Subtract/Intersects steps must give
// identical results through the epoch-stamped ScratchSet and through the
// sorted-slice IDSet operations it replaced.
func TestScratchSetMatchesIDSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	it := NewInterner()
	var sc ScratchSet

	randSet := func(universe int) IDSet {
		k := rng.Intn(8)
		ids := make([]ObjectID, 0, k)
		for i := 0; i < k; i++ {
			ids = append(ids, ObjectID(1+rng.Intn(universe)))
		}
		return NewIDSet(ids...)
	}
	toIDs := func(dense []uint32) IDSet {
		ids := make([]ObjectID, 0, len(dense))
		for _, d := range dense {
			ids = append(ids, it.ID(d))
		}
		slices.Sort(ids)
		return IDSet(ids)
	}

	for trial := 0; trial < 500; trial++ {
		universe := 1 + rng.Intn(50)
		model := randSet(universe) // the reference IDSet value of the set
		sc.Reset(max(it.Len(), 64))
		sc.AddAll(it.InternSet(model, nil))

		// A random program of the three walk operations.
		steps := 1 + rng.Intn(6)
		for s := 0; s < steps; s++ {
			operand := randSet(universe)
			od := it.InternSet(operand, nil)
			sc.Reset(max(it.Len(), 64)) // capacity may have grown
			sc.AddAll(it.InternSet(model, nil))
			switch rng.Intn(3) {
			case 0:
				sc.AddAll(od)
				model = model.Union(operand)
			case 1:
				sc.RemoveAll(od)
				model = model.Subtract(operand)
			case 2:
				if got, want := sc.ContainsAny(od), model.Intersects(operand); got != want {
					t.Fatalf("trial %d: ContainsAny = %v, Intersects = %v (set %v, operand %v)",
						trial, got, want, model, operand)
				}
				continue
			}
			got := toIDs(sc.AppendMembers(nil))
			if !got.Equal(model) {
				t.Fatalf("trial %d step %d: scratch %v, model %v", trial, s, got, model)
			}
			if sc.Len() != len(model) {
				t.Fatalf("trial %d step %d: Len %d, model %d", trial, s, sc.Len(), len(model))
			}
			for id := 1; id <= universe; id++ {
				d, ok := it.Lookup(ObjectID(id))
				in := ok && sc.Contains(d)
				if in != model.Contains(ObjectID(id)) {
					t.Fatalf("trial %d: membership of %d: scratch %v, model %v", trial, id, in, !in)
				}
			}
		}
	}
}

// TestScratchSetReAddAfterRemove guards the duplicate-member hazard: an
// index added, removed, and re-added within one epoch must appear in the
// member list exactly once.
func TestScratchSetReAddAfterRemove(t *testing.T) {
	var sc ScratchSet
	sc.Reset(8)
	if !sc.Add(3) {
		t.Fatal("first Add reported present")
	}
	sc.Remove(3)
	if sc.Contains(3) {
		t.Fatal("Contains after Remove")
	}
	if !sc.Add(3) {
		t.Fatal("re-Add reported present")
	}
	if got := sc.AppendMembers(nil); len(got) != 1 || got[0] != 3 {
		t.Fatalf("members = %v, want [3]", got)
	}
	if sc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", sc.Len())
	}
}

// TestScratchSetEpochIsolation checks that Reset fully empties the set
// without touching memory, across enough epochs to catch stamp reuse.
func TestScratchSetEpochIsolation(t *testing.T) {
	var sc ScratchSet
	for epoch := 0; epoch < 100; epoch++ {
		sc.Reset(16)
		for i := uint32(0); i < 16; i++ {
			if sc.Contains(i) {
				t.Fatalf("epoch %d: stale member %d after Reset", epoch, i)
			}
		}
		sc.Add(uint32(epoch % 16))
		if sc.Len() != 1 {
			t.Fatalf("epoch %d: Len %d", epoch, sc.Len())
		}
	}
}

// TestScratchSetGrow checks Grow preserves membership across capacity
// growth, unlike Reset.
func TestScratchSetGrow(t *testing.T) {
	var sc ScratchSet
	sc.Reset(4)
	sc.Add(1)
	sc.Add(3)
	sc.Remove(3)
	sc.Grow(1000)
	if !sc.Contains(1) || sc.Contains(3) || sc.Contains(999) {
		t.Fatal("Grow changed membership")
	}
	sc.Add(999)
	if got := sc.AppendMembers(nil); len(got) != 2 || got[0] != 1 || got[1] != 999 {
		t.Fatalf("members after Grow = %v, want [1 999]", got)
	}
}

func TestCountedSet(t *testing.T) {
	var cs CountedSet
	cs.Grow(8)
	cs.Inc(2)
	cs.Inc(2)
	cs.Inc(5)
	if !cs.Contains(2) || !cs.Contains(5) || cs.Contains(3) || cs.Contains(100) {
		t.Fatal("membership wrong after Inc")
	}
	if cs.Distinct() != 2 {
		t.Fatalf("Distinct = %d, want 2", cs.Distinct())
	}
	cs.Dec(2)
	if !cs.Contains(2) {
		t.Fatal("multiplicity 1 should still be a member")
	}
	cs.Dec(2)
	if cs.Contains(2) || cs.Distinct() != 1 {
		t.Fatalf("Contains(2)=%v Distinct=%d after final Dec", cs.Contains(2), cs.Distinct())
	}
	cs.Grow(1000)
	if !cs.Contains(5) {
		t.Fatal("Grow dropped membership")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dec of absent index did not panic")
		}
	}()
	cs.Dec(2)
}
