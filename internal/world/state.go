package world

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
)

// State is a single-version object store. The server's authoritative
// state ζS and each client's optimistic state ζCO are States; stable
// client states under the Incomplete World Model are MVStores (see
// mvstore.go) because actions can arrive out of serial order there.
type State struct {
	objs map[ObjectID]Value
}

// NewState returns an empty state.
func NewState() *State {
	return &State{objs: make(map[ObjectID]Value)}
}

// Get returns the value of id and whether the object exists. The returned
// slice is the stored one; callers must not mutate it (use Set).
func (s *State) Get(id ObjectID) (Value, bool) {
	v, ok := s.objs[id]
	return v, ok
}

// Set stores a copy of v as the value of id.
func (s *State) Set(id ObjectID, v Value) {
	s.objs[id] = v.Clone()
}

// SetInPlace stores a copy of v as the value of id, overwriting the
// stored buffer in place when the length matches so steady-state updates
// allocate nothing. Only for states owned outright by their engine:
// values previously returned by Get change under any reader that held
// on to them. Semantically identical to Set.
func (s *State) SetInPlace(id ObjectID, v Value) {
	if old, ok := s.objs[id]; ok && len(old) == len(v) {
		copy(old, v)
		return
	}
	s.objs[id] = v.Clone()
}

// Delete removes the object, if present.
func (s *State) Delete(id ObjectID) {
	delete(s.objs, id)
}

// Len reports the number of objects.
func (s *State) Len() int { return len(s.objs) }

// IDs returns all object ids in sorted order.
func (s *State) IDs() IDSet {
	ids := make(IDSet, 0, len(s.objs))
	for id := range s.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Clone returns a deep copy of the state. Clients initialize ζCO as a
// clone of the initial world.
func (s *State) Clone() *State {
	c := NewState()
	for id, v := range s.objs {
		c.objs[id] = v.Clone()
	}
	return c
}

// CopyFrom overwrites the values of the given ids with the values in src.
// This is the reconciliation assignment ζCO(WS(Q)) ← ζCS(WS(Q)) of
// Algorithm 3. Objects absent from src are deleted here too, keeping the
// two stores aligned on existence.
func (s *State) CopyFrom(src Reader, ids IDSet) {
	for _, id := range ids {
		if v, ok := src.Get(id); ok {
			s.objs[id] = v.Clone()
		} else {
			delete(s.objs, id)
		}
	}
}

// Digest returns an order-independent hash of the full state, used by
// consistency tests and by the RING inconsistency meter. Two states with
// equal digests are attribute-for-attribute identical with overwhelming
// probability.
func (s *State) Digest() uint64 {
	var sum uint64
	for id, v := range s.objs {
		h := fnv.New64a()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(id))
		h.Write(buf[:])
		for _, f := range v {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			h.Write(buf[:])
		}
		// XOR makes the digest independent of iteration order.
		sum ^= h.Sum64()
	}
	return sum
}

// Equal reports whether two states hold exactly the same objects and
// values.
func (s *State) Equal(o *State) bool {
	if len(s.objs) != len(o.objs) {
		return false
	}
	for id, v := range s.objs {
		ov, ok := o.objs[id]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Reader is the read interface shared by State and the latest-version
// view of MVStore; reconciliation and workload generation read through it.
type Reader interface {
	Get(id ObjectID) (Value, bool)
}

var _ Reader = (*State)(nil)
