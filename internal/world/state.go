package world

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
)

// State is a single-version object store. The server's authoritative
// state ζS and each client's optimistic state ζCO are States; stable
// client states under the Incomplete World Model are MVStores (see
// mvstore.go) because actions can arrive out of serial order there.
//
// A State is normally one map. Partition splits it into a power-of-two
// set of hash-keyed segments so the shard router's install phase can
// apply disjoint segments' writes on concurrent workers (state is only
// segmented by the engine that owns it outright; every observable
// behavior — Get, IDs order, Digest, Equal — is independent of the
// segment count). Segments are keyed by an id hash rather than the
// spatial lane map on purpose: reads stay a single lookup with no
// ownership indirection, and a batch that spans lanes still partitions
// cleanly by segment.
type State struct {
	objs map[ObjectID]Value
	// segs replaces objs after Partition: segs[seghash(id)&mask] holds
	// the object. len(segs) is a power of two.
	segs []map[ObjectID]Value
	mask uint64
}

// NewState returns an empty state.
func NewState() *State {
	return &State{objs: make(map[ObjectID]Value)}
}

// Partition splits the state into hash-keyed segments (n rounded up to
// a power of two, at least 1). Existing objects are redistributed. Only
// the owning engine may call this, and not concurrently with any other
// access; afterwards, writes to distinct segments are safe from
// distinct goroutines (group by SegmentOf).
func (s *State) Partition(n int) {
	p := 1
	for p < n {
		p <<= 1
	}
	segs := make([]map[ObjectID]Value, p)
	for i := range segs {
		segs[i] = make(map[ObjectID]Value)
	}
	mask := uint64(p - 1)
	move := func(m map[ObjectID]Value) {
		for id, v := range m {
			segs[seghash(uint64(id))&mask][id] = v
		}
	}
	if s.segs != nil {
		for _, m := range s.segs {
			move(m)
		}
	} else {
		move(s.objs)
	}
	s.objs, s.segs, s.mask = nil, segs, mask
}

// Segments reports the segment count (1 for an unpartitioned state).
func (s *State) Segments() int {
	if s.segs == nil {
		return 1
	}
	return len(s.segs)
}

// SegmentOf returns the segment index owning id, in [0, Segments()).
func (s *State) SegmentOf(id ObjectID) int {
	if s.segs == nil {
		return 0
	}
	return int(seghash(uint64(id)) & s.mask)
}

// m returns the map holding id.
func (s *State) m(id ObjectID) map[ObjectID]Value {
	if s.segs == nil {
		return s.objs
	}
	return s.segs[seghash(uint64(id))&s.mask]
}

// seghash is a splitmix64 finalizer: cheap, stateless, well spread even
// for the dense small ObjectIDs the worlds mint.
func seghash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Get returns the value of id and whether the object exists. The returned
// slice is the stored one; callers must not mutate it (use Set).
func (s *State) Get(id ObjectID) (Value, bool) {
	v, ok := s.m(id)[id]
	return v, ok
}

// Set stores a copy of v as the value of id.
func (s *State) Set(id ObjectID, v Value) {
	s.m(id)[id] = v.Clone()
}

// SetInPlace stores a copy of v as the value of id, overwriting the
// stored buffer in place when the length matches so steady-state updates
// allocate nothing. Only for states owned outright by their engine:
// values previously returned by Get change under any reader that held
// on to them. Semantically identical to Set.
func (s *State) SetInPlace(id ObjectID, v Value) {
	m := s.m(id)
	if old, ok := m[id]; ok && len(old) == len(v) {
		copy(old, v)
		return
	}
	m[id] = v.Clone()
}

// Delete removes the object, if present.
func (s *State) Delete(id ObjectID) {
	delete(s.m(id), id)
}

// Len reports the number of objects.
func (s *State) Len() int {
	if s.segs == nil {
		return len(s.objs)
	}
	n := 0
	for _, m := range s.segs {
		n += len(m)
	}
	return n
}

// forEach visits every object, in no particular order.
func (s *State) forEach(fn func(id ObjectID, v Value)) {
	if s.segs == nil {
		for id, v := range s.objs {
			fn(id, v)
		}
		return
	}
	for _, m := range s.segs {
		for id, v := range m {
			fn(id, v)
		}
	}
}

// IDs returns all object ids in sorted order.
func (s *State) IDs() IDSet {
	ids := make(IDSet, 0, s.Len())
	s.forEach(func(id ObjectID, _ Value) { ids = append(ids, id) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Clone returns a deep copy of the state as a single segment (the
// partitioning is an engine-side layout choice, not part of the value).
// Clients initialize ζCO as a clone of the initial world.
func (s *State) Clone() *State {
	c := NewState()
	s.forEach(func(id ObjectID, v Value) { c.objs[id] = v.Clone() })
	return c
}

// CopyFrom overwrites the values of the given ids with the values in src.
// This is the reconciliation assignment ζCO(WS(Q)) ← ζCS(WS(Q)) of
// Algorithm 3. Objects absent from src are deleted here too, keeping the
// two stores aligned on existence.
func (s *State) CopyFrom(src Reader, ids IDSet) {
	for _, id := range ids {
		if v, ok := src.Get(id); ok {
			s.m(id)[id] = v.Clone()
		} else {
			delete(s.m(id), id)
		}
	}
}

// Digest returns an order-independent hash of the full state, used by
// consistency tests and by the RING inconsistency meter. Two states with
// equal digests are attribute-for-attribute identical with overwhelming
// probability.
func (s *State) Digest() uint64 {
	var sum uint64
	s.forEach(func(id ObjectID, v Value) {
		h := fnv.New64a()
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(id))
		h.Write(buf[:])
		for _, f := range v {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			h.Write(buf[:])
		}
		// XOR makes the digest independent of iteration order.
		sum ^= h.Sum64()
	})
	return sum
}

// Equal reports whether two states hold exactly the same objects and
// values, regardless of how either is segmented.
func (s *State) Equal(o *State) bool {
	if s.Len() != o.Len() {
		return false
	}
	eq := true
	s.forEach(func(id ObjectID, v Value) {
		if !eq {
			return
		}
		ov, ok := o.Get(id)
		if !ok || !v.Equal(ov) {
			eq = false
		}
	})
	return eq
}

// Reader is the read interface shared by State and the latest-version
// view of MVStore; reconciliation and workload generation read through it.
type Reader interface {
	Get(id ObjectID) (Value, bool)
}

var _ Reader = (*State)(nil)
