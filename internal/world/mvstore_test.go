package world

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMVStoreReadAt(t *testing.T) {
	m := NewMVStore()
	m.WriteAt(1, 0, Value{0})
	m.WriteAt(1, 5, Value{5})
	m.WriteAt(1, 10, Value{10})

	cases := []struct {
		seq  uint64
		want float64
		ok   bool
	}{
		{0, 0, true},
		{3, 0, true},
		{5, 5, true},
		{7, 5, true},
		{10, 10, true},
		{100, 10, true},
	}
	for _, c := range cases {
		v, ok := m.ReadAt(1, c.seq)
		if ok != c.ok || (ok && v[0] != c.want) {
			t.Fatalf("ReadAt(1, %d) = %v, %v; want %v", c.seq, v, ok, c.want)
		}
	}
	if _, ok := m.ReadAt(2, 100); ok {
		t.Fatal("ReadAt of unknown object succeeded")
	}
}

func TestMVStoreOutOfOrderWrites(t *testing.T) {
	// The Incomplete World Model delivers actions out of serial order;
	// the chain must stay sorted regardless of insertion order.
	m := NewMVStore()
	m.WriteAt(1, 10, Value{10})
	m.WriteAt(1, 5, Value{5})
	m.WriteAt(1, 0, Value{0})
	if v, _ := m.ReadAt(1, 7); v[0] != 5 {
		t.Fatalf("ReadAt(7) = %v, want 5", v)
	}
	if v, seq, _ := m.Latest(1); v[0] != 10 || seq != 10 {
		t.Fatalf("Latest = %v @ %d", v, seq)
	}
	// An older write arriving after a newer one must NOT become latest —
	// the Thomas-write-rule behaviour falls out of the chain structure.
	m.WriteAt(1, 7, Value{7})
	if v, seq, _ := m.Latest(1); v[0] != 10 || seq != 10 {
		t.Fatalf("Latest after late old write = %v @ %d", v, seq)
	}
}

func TestMVStoreIdempotentRedelivery(t *testing.T) {
	m := NewMVStore()
	m.WriteAt(1, 5, Value{5})
	m.WriteAt(1, 5, Value{55}) // redelivery replaces
	if m.Versions() != 1 {
		t.Fatalf("Versions = %d, want 1", m.Versions())
	}
	if v, _ := m.ReadAt(1, 5); v[0] != 55 {
		t.Fatalf("ReadAt = %v, want 55", v)
	}
}

func TestMVStoreSeedAndLatestState(t *testing.T) {
	init := NewState()
	init.Set(1, Value{1})
	init.Set(2, Value{2})
	m := NewMVStore()
	m.Seed(init)
	m.WriteAt(1, 3, Value{30})
	s := m.LatestState()
	if v, _ := s.Get(1); v[0] != 30 {
		t.Fatalf("LatestState obj 1 = %v", v)
	}
	if v, _ := s.Get(2); v[0] != 2 {
		t.Fatalf("LatestState obj 2 = %v", v)
	}
	if !m.IDs().Equal(NewIDSet(1, 2)) {
		t.Fatalf("IDs = %v", m.IDs())
	}
	if !m.Known(1) || m.Known(9) {
		t.Fatal("Known wrong")
	}
	if m.LastWriter(1) != 3 || m.LastWriter(2) != 0 || m.LastWriter(9) != 0 {
		t.Fatal("LastWriter wrong")
	}
}

func TestMVStorePruneBelow(t *testing.T) {
	m := NewMVStore()
	m.WriteAt(1, 0, Value{0})
	m.WriteAt(1, 5, Value{5})
	m.WriteAt(1, 10, Value{10})
	m.WriteAt(2, 0, Value{100})
	m.PruneBelow(7)
	// Object 1: versions 0 and 5 collapse into one at seq 7.
	if m.Versions() != 3 {
		t.Fatalf("Versions = %d, want 3", m.Versions())
	}
	if v, ok := m.ReadAt(1, 7); !ok || v[0] != 5 {
		t.Fatalf("ReadAt(1,7) after prune = %v, %v", v, ok)
	}
	if v, ok := m.ReadAt(1, 20); !ok || v[0] != 10 {
		t.Fatalf("ReadAt(1,20) after prune = %v, %v", v, ok)
	}
	// Object 2 has a single version; prune must keep it readable.
	if v, ok := m.ReadAt(2, 100); !ok || v[0] != 100 {
		t.Fatalf("ReadAt(2) after prune = %v, %v", v, ok)
	}
}

func TestMVStoreGetReaderInterface(t *testing.T) {
	m := NewMVStore()
	m.WriteAt(1, 2, Value{42})
	var r Reader = m
	v, ok := r.Get(1)
	if !ok || v[0] != 42 {
		t.Fatalf("Reader.Get = %v, %v", v, ok)
	}
}

// TestMVStoreMatchesSerialReplayProperty: writing a random history in a
// random delivery order must yield the same ReadAt answers as writing it
// in serial order.
func TestMVStoreMatchesSerialReplayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type w struct {
			id  ObjectID
			seq uint64
			val float64
		}
		var hist []w
		used := map[[2]uint64]bool{}
		for i := 0; i < 60; i++ {
			id := ObjectID(rng.Intn(5))
			seq := uint64(rng.Intn(40))
			if used[[2]uint64{uint64(id), seq}] {
				continue
			}
			used[[2]uint64{uint64(id), seq}] = true
			hist = append(hist, w{id, seq, rng.Float64()})
		}
		serial := NewMVStore()
		for _, x := range hist {
			serial.WriteAt(x.id, x.seq, Value{x.val})
		}
		shuffled := NewMVStore()
		perm := rng.Perm(len(hist))
		for _, i := range perm {
			x := hist[i]
			shuffled.WriteAt(x.id, x.seq, Value{x.val})
		}
		for probe := 0; probe < 50; probe++ {
			id := ObjectID(rng.Intn(5))
			at := uint64(rng.Intn(45))
			v1, ok1 := serial.ReadAt(id, at)
			v2, ok2 := shuffled.ReadAt(id, at)
			if ok1 != ok2 {
				return false
			}
			if ok1 && !v1.Equal(v2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMVStorePruneInvariantProperty: pruning must not change any ReadAt
// at or above the prune point.
func TestMVStorePruneInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMVStore()
		ref := NewMVStore()
		for i := 0; i < 80; i++ {
			id := ObjectID(rng.Intn(6))
			seq := uint64(rng.Intn(50))
			val := Value{rng.Float64()}
			m.WriteAt(id, seq, val)
			ref.WriteAt(id, seq, val)
		}
		cut := uint64(rng.Intn(50))
		m.PruneBelow(cut)
		for probe := 0; probe < 60; probe++ {
			id := ObjectID(rng.Intn(6))
			at := cut + uint64(rng.Intn(20))
			v1, ok1 := m.ReadAt(id, at)
			v2, ok2 := ref.ReadAt(id, at)
			if ok1 != ok2 || (ok1 && !v1.Equal(v2)) {
				return false
			}
		}
		return m.Versions() <= ref.Versions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
