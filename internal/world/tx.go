package world

import "sort"

// Write is one recorded write: the pair (x, v) of a "write x ← v"
// performed by an action (Algorithm 1, step 4). Completion messages carry
// these records to the server, which installs them into ζS.
type Write struct {
	ID  ObjectID
	Val Value
}

// View is a point-in-time read interface over a store. Actions execute
// against a View through a Tx.
type View interface {
	Read(id ObjectID) (Value, bool)
}

// StateView adapts a State to a View.
type StateView struct{ S *State }

// Read returns the current value of id.
func (v StateView) Read(id ObjectID) (Value, bool) { return v.S.Get(id) }

// AtView reads an MVStore as of a serial position.
type AtView struct {
	M   *MVStore
	Seq uint64
}

// Read returns the value of id as of Seq.
func (v AtView) Read(id ObjectID) (Value, bool) { return v.M.ReadAt(id, v.Seq) }

// LatestView reads the newest versions of an MVStore.
type LatestView struct{ M *MVStore }

// Read returns the newest value of id.
func (v LatestView) Read(id ObjectID) (Value, bool) {
	val, _, ok := v.M.Latest(id)
	return val, ok
}

// Tx is a tracked transaction: it records the read set and buffers writes
// (read-your-writes semantics) so an action's actual accesses can be
// checked against its declared RS(a)/WS(a) and its effect extracted as a
// list of Writes.
type Tx struct {
	view     View
	readSet  map[ObjectID]struct{}
	writeLog []Write
	writeMap map[ObjectID]int // index into writeLog of latest write
	missed   []ObjectID       // reads of unknown objects
}

// NewTx returns a transaction reading from view.
func NewTx(view View) *Tx {
	return &Tx{
		view:     view,
		readSet:  make(map[ObjectID]struct{}),
		writeMap: make(map[ObjectID]int),
	}
}

// Reset re-arms tx for a fresh run against view, keeping its maps, write
// log and value buffers for reuse. Any Result or Writes slice taken from
// the previous run aliases those buffers, so the caller must have deep-
// copied what it intends to keep (Result.CloneInto) before resetting.
// The client engine's Algorithm 3 re-apply loop runs every queued action
// through one such scratch transaction instead of allocating a Tx — and
// two maps and a value clone per write — for each.
func (tx *Tx) Reset(view View) {
	tx.view = view
	clear(tx.readSet)
	clear(tx.writeMap)
	tx.writeLog = tx.writeLog[:0]
	tx.missed = tx.missed[:0]
}

// Read returns the value of id, preferring the transaction's own buffered
// write. The read is recorded. A read of an unknown object returns
// (nil, false) and is recorded as missed — the signal an action uses to
// detect a fatal conflict and abort as a no-op (Section III-A, Bayou-style
// conflict checks).
func (tx *Tx) Read(id ObjectID) (Value, bool) {
	tx.readSet[id] = struct{}{}
	if i, ok := tx.writeMap[id]; ok {
		return tx.writeLog[i].Val, true
	}
	v, ok := tx.view.Read(id)
	if !ok {
		tx.missed = append(tx.missed, id)
	}
	return v, ok
}

// Write buffers v as the new value of id. Per the paper's convention
// RS(a) ⊇ WS(a), a write also records a read. The buffered value is a
// copy of v, stored into a buffer recovered from a previous run when the
// transaction has been Reset.
func (tx *Tx) Write(id ObjectID, v Value) {
	tx.readSet[id] = struct{}{}
	if i, ok := tx.writeMap[id]; ok {
		tx.writeLog[i].Val = append(tx.writeLog[i].Val[:0], v...)
		return
	}
	tx.writeMap[id] = len(tx.writeLog)
	if n := len(tx.writeLog); n < cap(tx.writeLog) {
		// Reslice into a record left over from before the last Reset and
		// overwrite it in place, reusing its value buffer.
		tx.writeLog = tx.writeLog[:n+1]
		w := &tx.writeLog[n]
		w.ID = id
		w.Val = append(w.Val[:0], v...)
		return
	}
	tx.writeLog = append(tx.writeLog, Write{ID: id, Val: v.Clone()})
}

// ReadSet returns the ids read (including written ids), sorted.
func (tx *Tx) ReadSet() IDSet {
	ids := make(IDSet, 0, len(tx.readSet))
	for id := range tx.readSet {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// WriteSet returns the ids written, sorted.
func (tx *Tx) WriteSet() IDSet {
	ids := make(IDSet, 0, len(tx.writeMap))
	for id := range tx.writeMap {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Writes returns the buffered writes in first-write order, with later
// writes to the same object collapsed into the first record.
func (tx *Tx) Writes() []Write { return tx.writeLog }

// Missed returns ids whose reads found no value, in read order.
func (tx *Tx) Missed() []ObjectID { return tx.missed }
