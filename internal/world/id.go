// Package world implements the world-state database underlying the
// action-based protocols of Section III. The world state is "a database
// of objects" whose attributes are high-dimensional tuples (Section I);
// clients keep an optimistic version ζCO and a stable version ζCS of it,
// and the server keeps the authoritative state ζS.
package world

import "sort"

// ObjectID identifies an object in the world state.
type ObjectID uint64

// IDSet is a sorted, duplicate-free set of object IDs. Read and write
// sets — RS(a) and WS(a) in the paper — are IDSets, and Algorithm 6's
// transitive closure is a loop of IDSet intersections, unions and
// subtractions, so these operations are kept allocation-light.
type IDSet []ObjectID

// NewIDSet returns the set of the given ids, sorted and deduplicated.
func NewIDSet(ids ...ObjectID) IDSet {
	s := make(IDSet, len(ids))
	copy(s, ids)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Deduplicate in place.
	out := s[:0]
	for i, id := range s {
		if i == 0 || id != s[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// Len reports the number of ids in the set.
func (s IDSet) Len() int { return len(s) }

// Contains reports whether id is in the set.
func (s IDSet) Contains(id ObjectID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// Clone returns an independent copy of the set.
func (s IDSet) Clone() IDSet {
	if s == nil {
		return nil
	}
	c := make(IDSet, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two sets contain the same ids.
func (s IDSet) Equal(o IDSet) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether the two sets share any id. This is the hot
// test of Algorithm 6 (WS(aj) ∩ S ≠ ∅) and Algorithm 7 (S ∩ WS(Aj) ≠ ∅);
// a linear merge over the sorted slices avoids any allocation.
func (s IDSet) Intersects(o IDSet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			return true
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Union returns s ∪ o as a new set.
func (s IDSet) Union(o IDSet) IDSet {
	out := make(IDSet, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		default:
			out = append(out, o[j])
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, o[j:]...)
	return out
}

// Subtract returns s \ o as a new set.
func (s IDSet) Subtract(o IDSet) IDSet {
	out := make(IDSet, 0, len(s))
	i, j := 0, 0
	for i < len(s) {
		switch {
		case j >= len(o) || s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] == o[j]:
			i++
			j++
		default:
			j++
		}
	}
	return out
}

// Intersect returns s ∩ o as a new set.
func (s IDSet) Intersect(o IDSet) IDSet {
	var out IDSet
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return out
}
