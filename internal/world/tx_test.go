package world

import "testing"

func TestTxReadYourWrites(t *testing.T) {
	s := NewState()
	s.Set(1, Value{1})
	tx := NewTx(StateView{S: s})
	v, ok := tx.Read(1)
	if !ok || v[0] != 1 {
		t.Fatalf("Read = %v, %v", v, ok)
	}
	tx.Write(1, Value{2})
	v, _ = tx.Read(1)
	if v[0] != 2 {
		t.Fatalf("read-your-writes failed: %v", v)
	}
	// The underlying state is untouched until the caller applies writes.
	if sv, _ := s.Get(1); sv[0] != 1 {
		t.Fatal("Tx wrote through to the state")
	}
}

func TestTxTracksSets(t *testing.T) {
	s := NewState()
	s.Set(1, Value{1})
	s.Set(2, Value{2})
	tx := NewTx(StateView{S: s})
	tx.Read(1)
	tx.Read(2)
	tx.Write(3, Value{3})
	if !tx.ReadSet().Equal(NewIDSet(1, 2, 3)) {
		t.Fatalf("ReadSet = %v (writes must be included per RS ⊇ WS)", tx.ReadSet())
	}
	if !tx.WriteSet().Equal(NewIDSet(3)) {
		t.Fatalf("WriteSet = %v", tx.WriteSet())
	}
}

func TestTxWriteCollapsing(t *testing.T) {
	tx := NewTx(StateView{S: NewState()})
	tx.Write(1, Value{1})
	tx.Write(2, Value{2})
	tx.Write(1, Value{10})
	w := tx.Writes()
	if len(w) != 2 {
		t.Fatalf("Writes = %v, want 2 collapsed records", w)
	}
	if w[0].ID != 1 || w[0].Val[0] != 10 {
		t.Fatalf("collapsed write = %v", w[0])
	}
	if w[1].ID != 2 || w[1].Val[0] != 2 {
		t.Fatalf("second write = %v", w[1])
	}
}

func TestTxMissedReads(t *testing.T) {
	tx := NewTx(StateView{S: NewState()})
	if _, ok := tx.Read(7); ok {
		t.Fatal("read of unknown object succeeded")
	}
	if len(tx.Missed()) != 1 || tx.Missed()[0] != 7 {
		t.Fatalf("Missed = %v", tx.Missed())
	}
	// A write makes the object readable within the tx and it is no longer
	// missed on subsequent reads.
	tx.Write(7, Value{1})
	if _, ok := tx.Read(7); !ok {
		t.Fatal("read after write failed")
	}
	if len(tx.Missed()) != 1 {
		t.Fatalf("Missed grew: %v", tx.Missed())
	}
}

func TestTxWriteValueCopied(t *testing.T) {
	tx := NewTx(StateView{S: NewState()})
	v := Value{1}
	tx.Write(1, v)
	v[0] = 99
	if tx.Writes()[0].Val[0] != 1 {
		t.Fatal("Write aliased caller's slice")
	}
}

func TestAtViewReadsAsOfSeq(t *testing.T) {
	m := NewMVStore()
	m.WriteAt(1, 0, Value{0})
	m.WriteAt(1, 10, Value{10})
	tx := NewTx(AtView{M: m, Seq: 5})
	v, ok := tx.Read(1)
	if !ok || v[0] != 0 {
		t.Fatalf("AtView read = %v, %v; want 0 (version at seq 0)", v, ok)
	}
	tx2 := NewTx(AtView{M: m, Seq: 10})
	v, _ = tx2.Read(1)
	if v[0] != 10 {
		t.Fatalf("AtView(10) read = %v, want 10", v)
	}
}

func TestLatestView(t *testing.T) {
	m := NewMVStore()
	m.WriteAt(1, 3, Value{3})
	m.WriteAt(1, 9, Value{9})
	tx := NewTx(LatestView{M: m})
	v, ok := tx.Read(1)
	if !ok || v[0] != 9 {
		t.Fatalf("LatestView read = %v, %v", v, ok)
	}
}

// TestTxReset checks a Reset transaction starts clean and reuses its
// write-log value buffers without corrupting earlier runs' semantics.
func TestTxReset(t *testing.T) {
	s := NewState()
	s.Set(1, Value{10})
	s.Set(2, Value{20})
	tx := NewTx(StateView{S: s})
	tx.Read(1)
	tx.Write(2, Value{21})
	tx.Write(2, Value{22}) // overwrite path
	if v, _ := tx.Read(2); v[0] != 22 {
		t.Fatalf("read-your-writes = %v", v)
	}
	tx.Read(99) // missed

	firstLog := tx.Writes()
	if len(firstLog) != 1 || firstLog[0].Val[0] != 22 {
		t.Fatalf("writes before reset = %v", firstLog)
	}

	tx.Reset(StateView{S: s})
	if len(tx.Writes()) != 0 || len(tx.Missed()) != 0 || len(tx.ReadSet()) != 0 {
		t.Fatal("Reset left state behind")
	}
	if v, ok := tx.Read(2); !ok || v[0] != 20 {
		t.Fatalf("buffered write survived Reset: %v", v)
	}
	tx.Write(1, Value{11, 12})
	ws := tx.Writes()
	if len(ws) != 1 || ws[0].ID != 1 || !ws[0].Val.Equal(Value{11, 12}) {
		t.Fatalf("writes after reset = %v", ws)
	}
	// The recycled record must not alias the state's stored values.
	if v, _ := s.Get(1); v[0] != 10 {
		t.Fatalf("state mutated by scratch tx: %v", v)
	}

	// A third run shrinking the value exercises buffer truncation.
	tx.Reset(StateView{S: s})
	tx.Write(1, Value{7})
	if ws := tx.Writes(); len(ws[0].Val) != 1 || ws[0].Val[0] != 7 {
		t.Fatalf("reused buffer kept stale length: %v", ws[0].Val)
	}
}
