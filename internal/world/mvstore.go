package world

import "sort"

// MVStore is a multiversion object store: each object keeps a chain of
// (seq, value) versions, where seq is the server-assigned serial position
// of the action that wrote the value.
//
// Under the Incomplete World Model a client's stable state ζCS receives
// actions out of serial order: a later closure (Algorithm 6) can deliver
// an action older than ones the client has already applied, and blind
// writes carry values as of the server's install point. Replaying an
// action exactly therefore requires reading each object "as of" the
// action's serial position — precisely the multiversion-serializability
// machinery the paper builds on ([39], Section VI). A version chain per
// object provides that: ReadAt(id, n) returns the newest version with
// seq ≤ n.
//
// The paper's client-memory optimization (Section III-C: the server
// periodically reports the last installed action "enabling the client to
// garbage collect") maps to PruneBelow.
type MVStore struct {
	chains map[ObjectID][]version
}

type version struct {
	seq uint64
	val Value
}

// NewMVStore returns an empty store.
func NewMVStore() *MVStore {
	return &MVStore{chains: make(map[ObjectID][]version)}
}

// Seed installs the initial world as version 0 of every object.
func (m *MVStore) Seed(init *State) {
	for _, id := range init.IDs() {
		v, _ := init.Get(id)
		m.WriteAt(id, 0, v)
	}
}

// WriteAt installs a copy of v as the version of id at serial position
// seq. Writing the same (id, seq) twice replaces the version — this is
// idempotent redelivery, not an error, because the server may resend an
// action in a later closure batch.
func (m *MVStore) WriteAt(id ObjectID, seq uint64, v Value) {
	chain := m.chains[id]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].seq >= seq })
	if i < len(chain) && chain[i].seq == seq {
		chain[i].val = v.Clone()
		return
	}
	chain = append(chain, version{})
	copy(chain[i+1:], chain[i:])
	chain[i] = version{seq: seq, val: v.Clone()}
	m.chains[id] = chain
}

// ReadAt returns the value of id as of serial position seq: the newest
// version with version-seq ≤ seq. ok is false if the object has no
// version that old (the client has never been sent its value).
func (m *MVStore) ReadAt(id ObjectID, seq uint64) (Value, bool) {
	chain := m.chains[id]
	i := sort.Search(len(chain), func(i int) bool { return chain[i].seq > seq })
	if i == 0 {
		return nil, false
	}
	return chain[i-1].val, true
}

// Latest returns the newest version of id with its serial position.
func (m *MVStore) Latest(id ObjectID) (Value, uint64, bool) {
	chain := m.chains[id]
	if len(chain) == 0 {
		return nil, 0, false
	}
	v := chain[len(chain)-1]
	return v.val, v.seq, true
}

// Get returns the newest version of id, satisfying the Reader interface
// so that reconciliation (Algorithm 3) can copy stable values into the
// optimistic state.
func (m *MVStore) Get(id ObjectID) (Value, bool) {
	v, _, ok := m.Latest(id)
	return v, ok
}

var _ Reader = (*MVStore)(nil)

// LastWriter returns the serial position of the newest version of id, or
// 0 if the object is unknown.
func (m *MVStore) LastWriter(id ObjectID) uint64 {
	_, seq, ok := m.Latest(id)
	if !ok {
		return 0
	}
	return seq
}

// Known reports whether the store holds any version of id.
func (m *MVStore) Known(id ObjectID) bool {
	return len(m.chains[id]) > 0
}

// PruneBelow discards versions older than seq, keeping for each object
// the newest version with version-seq ≤ seq (collapsed to position seq)
// so ReadAt(id, x) keeps working for x ≥ seq. This implements the
// client-side garbage collection triggered by the server's last-installed
// notifications.
func (m *MVStore) PruneBelow(seq uint64) {
	for id, chain := range m.chains {
		i := sort.Search(len(chain), func(i int) bool { return chain[i].seq > seq })
		if i <= 1 {
			continue
		}
		// chain[i-1] is the newest version at or below seq; collapse
		// everything below it.
		kept := make([]version, 0, len(chain)-i+1)
		kept = append(kept, version{seq: seq, val: chain[i-1].val})
		kept = append(kept, chain[i:]...)
		m.chains[id] = kept
	}
}

// TruncateAbove discards versions newer than seq, dropping objects
// whose every version is above it. This is the client-side boot fence:
// a restarted server re-issues serial positions above its recovery
// floor, so versions the previous boot placed there describe actions
// that no longer hold those positions.
func (m *MVStore) TruncateAbove(seq uint64) {
	for id, chain := range m.chains {
		i := sort.Search(len(chain), func(i int) bool { return chain[i].seq > seq })
		if i == len(chain) {
			continue
		}
		if i == 0 {
			delete(m.chains, id)
			continue
		}
		for j := i; j < len(chain); j++ {
			chain[j] = version{}
		}
		m.chains[id] = chain[:i]
	}
}

// Versions reports the total number of stored versions, for memory
// accounting in tests and the GC experiments.
func (m *MVStore) Versions() int {
	n := 0
	for _, chain := range m.chains {
		n += len(chain)
	}
	return n
}

// LatestState materializes the newest version of every object as a State.
func (m *MVStore) LatestState() *State {
	s := NewState()
	for id, chain := range m.chains {
		if len(chain) > 0 {
			s.Set(id, chain[len(chain)-1].val)
		}
	}
	return s
}

// IDs returns the ids of all objects with at least one version, sorted.
func (m *MVStore) IDs() IDSet {
	ids := make(IDSet, 0, len(m.chains))
	for id, chain := range m.chains {
		if len(chain) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
