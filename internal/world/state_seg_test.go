package world

import (
	"sync"
	"testing"
)

// TestSegmentedBehaviorMatchesFlat drives the same operation sequence
// through a flat state and states partitioned at several widths: every
// observable — Get, Len, IDs order, Digest, Equal — must be independent
// of the segment count. This is the deterministic-merge contract the
// shard router's parallel install phase leans on.
func TestSegmentedBehaviorMatchesFlat(t *testing.T) {
	build := func(segs int) *State {
		s := NewState()
		if segs > 1 {
			s.Partition(segs)
		}
		for i := 0; i < 300; i++ {
			s.Set(ObjectID(i), Value{float64(i), float64(i * 2)})
		}
		for i := 0; i < 300; i += 3 {
			s.SetInPlace(ObjectID(i), Value{float64(-i), float64(i)})
		}
		for i := 0; i < 300; i += 7 {
			s.Delete(ObjectID(i))
		}
		return s
	}
	flat := build(1)
	for _, n := range []int{2, 4, 8} {
		seg := build(n)
		if seg.Segments() < n {
			t.Fatalf("Partition(%d): got %d segments", n, seg.Segments())
		}
		if seg.Len() != flat.Len() {
			t.Fatalf("segs=%d: Len %d != flat %d", n, seg.Len(), flat.Len())
		}
		if got, want := seg.Digest(), flat.Digest(); got != want {
			t.Fatalf("segs=%d: Digest %x != flat %x", n, got, want)
		}
		if !seg.Equal(flat) || !flat.Equal(seg) {
			t.Fatalf("segs=%d: Equal not symmetric with flat", n)
		}
		segIDs, flatIDs := seg.IDs(), flat.IDs()
		if len(segIDs) != len(flatIDs) {
			t.Fatalf("segs=%d: IDs len mismatch", n)
		}
		for i := range segIDs {
			if segIDs[i] != flatIDs[i] {
				t.Fatalf("segs=%d: IDs[%d] = %d, flat %d", n, i, segIDs[i], flatIDs[i])
			}
		}
	}
}

// TestSegmentedCrossSegmentIsolation writes to every segment from its
// own goroutine — the shard router's parallel install shape. Under
// -race this asserts that segment-disjoint writers never touch shared
// map state; the final read-back asserts no write was lost or misrouted.
func TestSegmentedCrossSegmentIsolation(t *testing.T) {
	const segs, objs = 4, 400
	s := NewState()
	s.Partition(segs)
	if s.Segments() != segs {
		t.Fatalf("Segments() = %d, want %d", s.Segments(), segs)
	}

	bySeg := make([][]ObjectID, s.Segments())
	for i := 0; i < objs; i++ {
		id := ObjectID(i)
		bySeg[s.SegmentOf(id)] = append(bySeg[s.SegmentOf(id)], id)
	}

	var wg sync.WaitGroup
	for g, ids := range bySeg {
		wg.Add(1)
		go func(g int, ids []ObjectID) {
			defer wg.Done()
			for _, id := range ids {
				s.Set(id, Value{float64(id) + float64(g)/10})
				if v, ok := s.Get(id); !ok || v[0] != float64(id)+float64(g)/10 {
					t.Errorf("seg %d: read-your-write failed for %d", g, id)
				}
			}
		}(g, ids)
	}
	wg.Wait()

	if s.Len() != objs {
		t.Fatalf("Len = %d, want %d", s.Len(), objs)
	}
	for g, ids := range bySeg {
		for _, id := range ids {
			v, ok := s.Get(id)
			if !ok || v[0] != float64(id)+float64(g)/10 {
				t.Fatalf("object %d (seg %d): got %v ok=%v", id, g, v, ok)
			}
		}
	}
}

// TestSegmentedCloneAndCopyFrom checks that Clone flattens to an equal
// value and CopyFrom routes through segments, including the
// delete-when-absent branch.
func TestSegmentedCloneAndCopyFrom(t *testing.T) {
	s := NewState()
	s.Partition(4)
	for i := 0; i < 50; i++ {
		s.Set(ObjectID(i), Value{float64(i)})
	}
	c := s.Clone()
	if c.Segments() != 1 {
		t.Fatalf("Clone kept %d segments, want 1", c.Segments())
	}
	if !c.Equal(s) {
		t.Fatal("Clone not Equal to source")
	}

	src := NewState()
	src.Set(ObjectID(1), Value{99})
	// id 2 absent from src: CopyFrom must delete it here.
	s.CopyFrom(src, IDSet{1, 2})
	if v, _ := s.Get(1); v[0] != 99 {
		t.Fatalf("CopyFrom value: got %v", v)
	}
	if _, ok := s.Get(2); ok {
		t.Fatal("CopyFrom kept an id absent from src")
	}

	// Repartitioning an already-partitioned state redistributes without loss.
	want := s.Digest()
	s.Partition(8)
	if s.Digest() != want {
		t.Fatal("repartition changed the digest")
	}
}
