package integrity

import (
	"testing"

	"seve/internal/action"
	"seve/internal/world"
)

// fakeAction is a minimal action with explicit declared sets and an
// injectable body, for exercising the validator tables.
type fakeAction struct {
	id    action.ID
	rs    world.IDSet
	ws    world.IDSet
	apply func(tx *world.Tx) bool
}

func (a *fakeAction) ID() action.ID         { return a.id }
func (a *fakeAction) Kind() action.Kind     { return 999 }
func (a *fakeAction) ReadSet() world.IDSet  { return a.rs }
func (a *fakeAction) WriteSet() world.IDSet { return a.ws }
func (a *fakeAction) MarshalBody() []byte   { return nil }
func (a *fakeAction) Apply(tx *world.Tx) bool {
	if a.apply == nil {
		return true
	}
	return a.apply(tx)
}

// delegating wraps an inner action and forwards its set methods — the
// "delegating set methods" shape from composed application actions. The
// validator must see through the indirection transparently.
type delegating struct{ inner action.Action }

func (d delegating) ID() action.ID           { return d.inner.ID() }
func (d delegating) Kind() action.Kind       { return d.inner.Kind() }
func (d delegating) ReadSet() world.IDSet    { return d.inner.ReadSet() }
func (d delegating) WriteSet() world.IDSet   { return d.inner.WriteSet() }
func (d delegating) MarshalBody() []byte     { return d.inner.MarshalBody() }
func (d delegating) Apply(tx *world.Tx) bool { return d.inner.Apply(tx) }

func ids(xs ...world.ObjectID) world.IDSet { return world.NewIDSet(xs...) }

func TestCheckContract(t *testing.T) {
	span := make([]world.ObjectID, 0, 64)
	for i := world.ObjectID(0); i < 64; i++ {
		span = append(span, i*7)
	}
	cases := []struct {
		name string
		act  action.Action
		want bool
	}{
		{"empty write set", &fakeAction{rs: ids(1, 2), ws: nil}, true},
		{"empty both", &fakeAction{rs: nil, ws: nil}, true},
		{"ws equals rs", &fakeAction{rs: ids(3, 4), ws: ids(3, 4)}, true},
		{"ws strict subset", &fakeAction{rs: ids(1, 2, 3), ws: ids(2)}, true},
		{"ws outside rs", &fakeAction{rs: ids(1, 2), ws: ids(3)}, false},
		{"ws overlaps rs partially", &fakeAction{rs: ids(1, 2), ws: ids(2, 3)}, false},
		{"blind-write shape ws only", &fakeAction{rs: nil, ws: ids(9)}, false},
		{"delegating honest", delegating{&fakeAction{rs: ids(5, 6), ws: ids(5)}}, true},
		{"delegating forged", delegating{&fakeAction{rs: ids(5), ws: ids(6)}}, false},
		{"spanning action", &fakeAction{rs: world.NewIDSet(span...), ws: ids(7, 70, 441)}, true},
		{"spanning with one stray", &fakeAction{rs: world.NewIDSet(span...), ws: ids(7, 8)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CheckContract(tc.act); got != tc.want {
				t.Fatalf("CheckContract = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCheckFootprint(t *testing.T) {
	w := func(id world.ObjectID) world.Write { return world.Write{ID: id, Val: world.Value{1}} }
	cases := []struct {
		name   string
		res    action.Result
		ws     world.IDSet
		wantID world.ObjectID
		wantOK bool
	}{
		{"empty writes", action.Result{OK: true}, ids(1), 0, true},
		{"aborted no-op", action.Result{OK: false}, ids(1), 0, true},
		{"writes within ws", action.Result{OK: true, Writes: []world.Write{w(1), w(2)}}, ids(1, 2, 3), 0, true},
		{"forged write", action.Result{OK: true, Writes: []world.Write{w(1), w(4)}}, ids(1, 2), 4, false},
		{"empty ws with writes", action.Result{OK: true, Writes: []world.Write{w(1)}}, nil, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id, ok := CheckFootprint(tc.res, tc.ws)
			if ok != tc.wantOK || id != tc.wantID {
				t.Fatalf("CheckFootprint = (%d, %v), want (%d, %v)", id, ok, tc.wantID, tc.wantOK)
			}
		})
	}
}

// incr reads obj and writes obj+delta — a deterministic action whose
// re-execution the auditor can check.
func incr(obj world.ObjectID, delta float64) *fakeAction {
	return &fakeAction{
		rs: ids(obj), ws: ids(obj),
		apply: func(tx *world.Tx) bool {
			v, ok := tx.Read(obj)
			if !ok {
				return false
			}
			tx.Write(obj, world.Value{v[0] + delta})
			return true
		},
	}
}

func TestAudit(t *testing.T) {
	st := world.NewState()
	st.Set(1, world.Value{10})
	view := world.StateView{S: st}

	honest := action.Eval(incr(1, 5), view)
	if got, ok := Audit(incr(1, 5), view, honest); !ok {
		t.Fatalf("honest report diverged: got %+v want %+v", got, honest)
	}

	tampered := honest.Clone()
	tampered.Writes[0].Val = world.Value{999}
	if got, ok := Audit(incr(1, 5), view, tampered); ok {
		t.Fatal("tampered value escaped the auditor")
	} else if !got.Equal(honest) {
		t.Fatalf("auditor's authoritative result %+v != honest %+v", got, honest)
	}

	// Aborting action: OK=false on both sides matches; a report claiming
	// success where the server's evaluation aborts diverges.
	abort := incr(2, 1) // object 2 absent → Apply returns false
	if _, ok := Audit(abort, view, action.Result{OK: false}); !ok {
		t.Fatal("honest abort flagged as divergence")
	}
	if _, ok := Audit(abort, view, action.Result{OK: true}); ok {
		t.Fatal("forged commit-where-abort escaped the auditor")
	}
}

func TestSampleEdges(t *testing.T) {
	if Sample(42, 7, 0) {
		t.Fatal("rate 0 must never sample")
	}
	if Sample(42, 7, -1) {
		t.Fatal("negative rate must never sample")
	}
	if !Sample(42, 7, 1) || !Sample(42, 7, 2) {
		t.Fatal("rate >= 1 must always sample")
	}
}

// TestSampleDeterminismPin: the audit schedule is a pure function of
// (seed, seq, rate) — two ledgers with the same seed agree on every
// position, and the empirical rate lands near the configured one.
func TestSampleDeterminismPin(t *testing.T) {
	const rate = 0.25
	a, b := NewLedger(Mix(7)), NewLedger(Mix(7))
	other := NewLedger(Mix(8))
	hits, differs := 0, false
	for seq := uint64(1); seq <= 20000; seq++ {
		da := a.ShouldAudit(seq, rate)
		if db := b.ShouldAudit(seq, rate); da != db {
			t.Fatalf("same seed diverged at seq %d", seq)
		}
		if da != other.ShouldAudit(seq, rate) {
			differs = true
		}
		if da {
			hits++
		}
	}
	if !differs {
		t.Fatal("distinct seeds produced identical schedules")
	}
	if hits < 4500 || hits > 5500 {
		t.Fatalf("empirical rate %d/20000 far from 0.25", hits)
	}
}

func TestMixScrambles(t *testing.T) {
	seen := make(map[uint64]bool)
	for x := uint64(0); x < 1000; x++ {
		h := Mix(x)
		if seen[h] {
			t.Fatalf("collision at %d", x)
		}
		seen[h] = true
	}
}

func TestBucket(t *testing.T) {
	var b Bucket
	// Unlimited rate never blocks and never primes.
	for i := 0; i < 100; i++ {
		if !b.Allow(float64(i), 0, 1) {
			t.Fatal("unlimited rate blocked")
		}
	}
	// Burst depth spends down, then refills at the configured rate.
	var m Bucket
	for i := 0; i < 3; i++ {
		if !m.Allow(1000, 10, 3) {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if m.Allow(1000, 10, 3) {
		t.Fatal("empty bucket allowed a submission")
	}
	// 10/s → one token per 100ms.
	if m.Allow(1050, 10, 3) {
		t.Fatal("refill arrived early")
	}
	if !m.Allow(1100, 10, 3) {
		t.Fatal("refill missing after 100ms")
	}
	// Refill caps at the burst depth.
	if !m.Allow(100000, 10, 3) || !m.Allow(100000, 10, 3) || !m.Allow(100000, 10, 3) {
		t.Fatal("bucket did not refill to depth")
	}
	if m.Allow(100000, 10, 3) {
		t.Fatal("bucket exceeded burst depth")
	}
	// A zero burst is treated as depth 1; a backward clock never panics
	// or refills.
	var z Bucket
	if !z.Allow(500, 1, 0) {
		t.Fatal("first token at depth 1 denied")
	}
	if z.Allow(400, 1, 0) {
		t.Fatal("backward clock minted a token")
	}
}

func TestViolationString(t *testing.T) {
	want := map[Violation]string{
		OK:                   "ok",
		ViolationContract:    "contract",
		ViolationFootprint:   "footprint",
		ViolationAudit:       "audit",
		ViolationReplay:      "replay",
		ViolationRate:        "rate",
		ViolationWriteSet:    "writeset",
		ViolationRadius:      "radius",
		ViolationQuarantined: "quarantined",
		Violation(200):       "unknown",
	}
	for v, s := range want {
		if v.String() != s {
			t.Fatalf("Violation(%d).String() = %q, want %q", v, v.String(), s)
		}
	}
}
