// Package integrity enforces semantic integrity on untrusted clients,
// after "Enforcing Semantic Integrity on Untrusted Clients in Networked
// Virtual Environments" (cs/0503080) mapped onto this engine's action
// model. Actions already declare read/write sets, so the server can
// (a) cheaply validate every reported completion against the declared
// WS ⊆ RS contract and the action's registered footprint, (b) re-execute
// a deterministically sampled fraction of completions against ζS at
// exactly their serial point and quarantine clients whose results
// diverge, and (c) bound each client's influence — submit rate, write-set
// size, influence-sphere radius.
//
// The package is deliberately a leaf: it knows actions and world state
// but nothing about the engine, so the same checks serve core.Server,
// shard.Router, and tests without import cycles. Everything here is
// deterministic — sampling decisions derive from a per-session seed and
// the serial position, never from wall clocks or math/rand — so the
// audit schedule replays byte-identically through the effective log and
// across crash-restart.
package integrity

import (
	"seve/internal/action"
	"seve/internal/world"
)

// Violation classifies an integrity failure. The zero value OK means no
// violation. Codes travel in the wire.Quarantine verdict, so their
// numeric values are part of the protocol and must stay stable.
type Violation uint8

const (
	// OK is the absence of a violation.
	OK Violation = iota
	// ViolationContract: the action's declared sets break the WS ⊆ RS
	// convention the conflict analysis is built on.
	ViolationContract
	// ViolationFootprint: a reported completion wrote an object outside
	// the action's declared write set (a forged write).
	ViolationFootprint
	// ViolationAudit: a sampled re-execution against ζS diverged from
	// the reported result (result tampering).
	ViolationAudit
	// ViolationReplay: a completion replayed for an already-installed
	// position disagreed with the installed result.
	ViolationReplay
	// ViolationRate: the client exceeded its token-bucket submit rate.
	ViolationRate
	// ViolationWriteSet: the action's declared write set exceeded the
	// per-client size cap.
	ViolationWriteSet
	// ViolationRadius: the action's influence sphere exceeded the
	// per-client radius cap.
	ViolationRadius
	// ViolationQuarantined: a submission or completion arrived from a
	// client already under quarantine.
	ViolationQuarantined
)

// String names the violation for diagnostics.
func (v Violation) String() string {
	switch v {
	case OK:
		return "ok"
	case ViolationContract:
		return "contract"
	case ViolationFootprint:
		return "footprint"
	case ViolationAudit:
		return "audit"
	case ViolationReplay:
		return "replay"
	case ViolationRate:
		return "rate"
	case ViolationWriteSet:
		return "writeset"
	case ViolationRadius:
		return "radius"
	case ViolationQuarantined:
		return "quarantined"
	}
	return "unknown"
}

// Mix is the splitmix64 finalizer: a cheap bijective scrambler whose
// output is uniform enough to treat as 64 random bits. The audit sampler
// feeds it the session seed and the serial position.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sample reports whether the completion at serial position seq is
// audited under the given per-session seed and sampling rate. The
// decision is a pure function of (seed, seq, rate): the same session
// audits the same positions on every replay, so the effective log and a
// crash-restarted server reproduce the identical audit schedule.
func Sample(seed, seq uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	// Top 53 bits of the mixed hash as a uniform value in [0, 2^53),
	// compared against rate scaled to the same range.
	h := Mix(seed ^ Mix(seq))
	return float64(h>>11) < rate*(1<<53)
}

// CheckContract reports whether the action honors the package-wide
// WS ⊆ RS declaration convention (action.Action doc). A breach means the
// conflict analysis the serializer ran on this action was unsound, so
// the submitting client is lying about its footprint.
func CheckContract(a action.Action) bool {
	rs, ws := a.ReadSet(), a.WriteSet()
	for _, id := range ws {
		if !rs.Contains(id) {
			return false
		}
	}
	return true
}

// CheckFootprint verifies that every write in a reported result falls
// inside the action's declared write set. It returns the first offending
// object id and ok=false on a forged write.
func CheckFootprint(res action.Result, ws world.IDSet) (world.ObjectID, bool) {
	for _, w := range res.Writes {
		if !ws.Contains(w.ID) {
			return w.ID, false
		}
	}
	return 0, true
}

// Audit re-executes the action against view — the server's own state at
// exactly the action's serial point — and compares with the reported
// result. Determinism of actions (Theorem 1) guarantees an honest
// client's report matches, so any divergence is tampering. The returned
// result is the server's authoritative evaluation; on divergence the
// caller installs it in place of the forged report.
func Audit(a action.Action, view world.View, reported action.Result) (action.Result, bool) {
	got := action.Eval(a, view)
	return got, got.Equal(reported)
}

// Bucket is a token bucket over the engine's millisecond clock. It
// refills continuously at the configured rate up to the burst depth and
// spends one token per submission. Time comes from the caller (the
// engine's deterministic nowMs), never from the wall clock, so rate
// verdicts replay identically through the effective log.
type Bucket struct {
	tokens float64
	lastMs float64
	primed bool
}

// Allow consumes one token at nowMs, refilling first. ratePerSec <= 0
// means unlimited; burst < 1 is treated as a depth of 1.
func (b *Bucket) Allow(nowMs, ratePerSec float64, burst int) bool {
	if ratePerSec <= 0 {
		return true
	}
	depth := float64(burst)
	if depth < 1 {
		depth = 1
	}
	if !b.primed {
		b.tokens = depth
		b.lastMs = nowMs
		b.primed = true
	}
	if nowMs > b.lastMs {
		b.tokens += (nowMs - b.lastMs) * ratePerSec / 1000
		if b.tokens > depth {
			b.tokens = depth
		}
		b.lastMs = nowMs
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Ledger is the server's per-client integrity state: the audit sampling
// seed, the submit-rate bucket, and the quarantine latch. Ledgers
// outlive connections (like the engine's slot bindings), so a cheater
// cannot clear a verdict by reconnecting.
type Ledger struct {
	// Seed drives the deterministic audit sampling stream for this
	// client's completions.
	Seed uint64
	// Bucket meters the client's submissions.
	Bucket Bucket
	// Quarantined latches the verdict; once set, every further
	// submission and completion from the client is rejected.
	Quarantined bool
}

// NewLedger returns a ledger with the given sampling seed.
func NewLedger(seed uint64) *Ledger { return &Ledger{Seed: seed} }

// ShouldAudit reports whether this client's completion at serial
// position seq is audited at the given rate.
func (l *Ledger) ShouldAudit(seq uint64, rate float64) bool {
	return Sample(l.Seed, seq, rate)
}
