package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrameSize caps a single frame at 16 MiB. A peer announcing a larger
// frame is malformed or hostile; the reader rejects it instead of
// allocating unboundedly.
const MaxFrameSize = 16 << 20

// frameHeaderSize is the 4-byte little-endian payload length plus the
// 1-byte message type that prefix every frame.
const frameHeaderSize = 5

// WriteFrame writes one length-prefixed message to w: a 4-byte little-
// endian payload length, a 1-byte message type, then the encoded payload.
// This is the on-the-wire format of the real TCP deployment. The frame
// is staged in a pooled buffer and issued as a single write.
func WriteFrame(w io.Writer, msg Msg) error {
	buf := AppendFrame(GetBuf(minBufCap), msg)
	_, err := w.Write(buf)
	PutBuf(buf)
	if err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	return nil
}

// ReadFrame reads one message written by WriteFrame. It returns io.EOF
// unwrapped on a clean close before a header byte arrives, so callers can
// distinguish orderly shutdown from corruption.
func ReadFrame(r io.Reader) (Msg, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return Decode(MsgType(hdr[4]), payload)
}
