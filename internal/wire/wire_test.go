package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"testing"

	"seve/internal/action"
	"seve/internal/world"
)

// testAct is a registered test action carrying two float parameters.
type testAct struct {
	id   action.ID
	A, B float64
}

const kindTest action.Kind = 7

func (a *testAct) ID() action.ID           { return a.id }
func (a *testAct) Kind() action.Kind       { return kindTest }
func (a *testAct) ReadSet() world.IDSet    { return world.NewIDSet(1) }
func (a *testAct) WriteSet() world.IDSet   { return world.NewIDSet(1) }
func (a *testAct) Apply(tx *world.Tx) bool { return true }

func (a *testAct) MarshalBody() []byte {
	// Raw float bits: exact for every value, so Encode∘Decode is a
	// fixpoint under fuzzing (a scaled-integer codec is not).
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(a.A))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(a.B))
	return buf
}

func init() {
	RegisterKind(kindTest, func(id action.ID, body []byte) (action.Action, error) {
		if len(body) < 16 {
			return nil, fmt.Errorf("test action body truncated: %d bytes", len(body))
		}
		a := &testAct{id: id}
		a.A = math.Float64frombits(binary.LittleEndian.Uint64(body))
		a.B = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
		return a, nil
	})
}

func env(seq uint64, origin action.ClientID, a action.Action) action.Envelope {
	return action.Envelope{Seq: seq, Origin: origin, Act: a}
}

func TestSubmitRoundTrip(t *testing.T) {
	a := &testAct{id: action.ID{Client: 3, Seq: 9}, A: 1.5, B: -2}
	m := &Submit{Env: env(0, 3, a)}
	buf := Encode(m)
	if len(buf) != m.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(buf), m.WireSize())
	}
	got, err := Decode(TypeSubmit, buf)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*Submit)
	ga := g.Env.Act.(*testAct)
	if ga.id != a.id || ga.A != 1.5 || ga.B != -2 {
		t.Fatalf("round trip = %+v", ga)
	}
	if g.Env.Origin != 3 {
		t.Fatalf("origin = %d", g.Env.Origin)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	bw := action.NewBlindWrite(action.ID{Client: action.OriginServer, Seq: 1},
		[]world.Write{{ID: 5, Val: world.Value{1, 2}}})
	m := &Batch{
		Envs: []action.Envelope{
			env(10, action.OriginServer, bw),
			env(11, 2, &testAct{id: action.ID{Client: 2, Seq: 4}, A: 3}),
		},
		Push:          true,
		InstalledUpTo: 9,
	}
	buf := Encode(m)
	if len(buf) != m.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(buf), m.WireSize())
	}
	got, err := Decode(TypeBatch, buf)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*Batch)
	if !g.Push || g.InstalledUpTo != 9 || len(g.Envs) != 2 {
		t.Fatalf("batch meta = %+v", g)
	}
	if g.Envs[0].Seq != 10 || g.Envs[1].Seq != 11 {
		t.Fatalf("seqs = %d, %d", g.Envs[0].Seq, g.Envs[1].Seq)
	}
	gbw, ok := g.Envs[0].Act.(*action.BlindWrite)
	if !ok {
		t.Fatalf("first env decoded as %T", g.Envs[0].Act)
	}
	if w := gbw.Writes(); len(w) != 1 || w[0].ID != 5 || !w[0].Val.Equal(world.Value{1, 2}) {
		t.Fatalf("blind write = %v", w)
	}
}

func TestCompletionRoundTrip(t *testing.T) {
	m := &Completion{
		Seq: 77,
		By:  4,
		Res: action.Result{OK: true, Writes: []world.Write{
			{ID: 1, Val: world.Value{9.25}},
			{ID: 2, Val: nil},
		}},
	}
	buf := Encode(m)
	if len(buf) != m.WireSize() {
		t.Fatalf("encoded %d, WireSize %d", len(buf), m.WireSize())
	}
	got, err := Decode(TypeCompletion, buf)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*Completion)
	if g.Seq != 77 || g.By != 4 || !g.Res.OK {
		t.Fatalf("completion = %+v", g)
	}
	if len(g.Res.Writes) != 2 || g.Res.Writes[0].Val[0] != 9.25 {
		t.Fatalf("writes = %v", g.Res.Writes)
	}
	// Aborted result.
	m2 := &Completion{Seq: 78, By: 4, Res: action.Result{OK: false}}
	g2, err := Decode(TypeCompletion, Encode(m2))
	if err != nil {
		t.Fatal(err)
	}
	if g2.(*Completion).Res.OK {
		t.Fatal("abort decoded as commit")
	}
}

func TestDropHelloWelcomeRoundTrip(t *testing.T) {
	d := &Drop{ActID: action.ID{Client: 6, Seq: 3}}
	gd, err := Decode(TypeDrop, Encode(d))
	if err != nil {
		t.Fatal(err)
	}
	if gd.(*Drop).ActID != d.ActID {
		t.Fatalf("drop = %+v", gd)
	}

	h := &Hello{InterestMask: 0b1010}
	gh, err := Decode(TypeHello, Encode(h))
	if err != nil {
		t.Fatal(err)
	}
	if gh.(*Hello).InterestMask != h.InterestMask {
		t.Fatalf("hello = %+v", gh)
	}

	w := &Welcome{You: 9, Init: []world.Write{{ID: 1, Val: world.Value{5}}}}
	if len(Encode(w)) != w.WireSize() {
		t.Fatal("welcome WireSize mismatch")
	}
	gw, err := Decode(TypeWelcome, Encode(w))
	if err != nil {
		t.Fatal(err)
	}
	if gw.(*Welcome).You != 9 || len(gw.(*Welcome).Init) != 1 {
		t.Fatalf("welcome = %+v", gw)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		t   MsgType
		buf []byte
	}{
		{TypeSubmit, []byte{1, 2, 3}},
		{TypeBatch, []byte{0}},
		{TypeCompletion, []byte{0}},
		{TypeDrop, []byte{1}},
		{TypeHello, []byte{1}},
		{TypeWelcome, []byte{1}},
		{MsgType(99), []byte{}},
	}
	for _, c := range cases {
		if _, err := Decode(c.t, c.buf); err == nil {
			t.Errorf("type %d: truncated buffer accepted", c.t)
		}
	}
	// Unknown action kind inside a submit.
	a := &testAct{id: action.ID{Client: 1, Seq: 1}}
	buf := Encode(&Submit{Env: env(0, 1, a)})
	binary.LittleEndian.PutUint16(buf[20:], 999) // corrupt kind
	if _, err := Decode(TypeSubmit, buf); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDuplicateKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterKind did not panic")
		}
	}()
	RegisterKind(kindTest, nil)
}

func TestRegisteredKinds(t *testing.T) {
	ks := RegisteredKinds()
	found := false
	for _, k := range ks {
		if k == kindTest {
			found = true
		}
	}
	if !found {
		t.Fatalf("kinds = %v, missing %d", ks, kindTest)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Msg{
		&Submit{Env: env(0, 1, &testAct{id: action.ID{Client: 1, Seq: 1}, A: 7})},
		&Drop{ActID: action.ID{Client: 1, Seq: 1}},
		&Completion{Seq: 5, By: 1, Res: action.Result{OK: true}},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("frame %d type = %d, want %d", i, got.Type(), want.Type())
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxFrameSize+1)
	hdr[4] = byte(TypeDrop)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Drop{ActID: action.ID{Client: 1, Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil || err == io.EOF {
		t.Fatalf("truncated payload: err = %v", err)
	}
}
