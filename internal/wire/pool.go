package wire

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"seve/internal/action"
)

// This file is the allocation-free delivery path: a shared buffer pool,
// reference-counted encoded frames, and an encode-once cache for the
// envelope section shared by sibling push batches. Ownership rules are
// documented in DESIGN.md §8.

const (
	// minBufCap sizes fresh pool buffers; most protocol messages fit.
	minBufCap = 512
	// maxPooledCap keeps pathological frames (near MaxFrameSize) from
	// pinning their backing arrays in the pool forever.
	maxPooledCap = 1 << 20
)

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, minBufCap)
		return &b
	},
}

// GetBuf returns an empty buffer with capacity at least n from the
// shared pool. Return it with PutBuf when done.
func GetBuf(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	if cap(b) > 0 {
		// This buffer is live again: forget it as the most recent put so
		// its next (legitimate) PutBuf does not trip the double-put check.
		lastPut.CompareAndSwap(&b[:1][0], nil)
	}
	if cap(b) < n {
		b = make([]byte, 0, n)
	}
	return b
}

// lastPut remembers the first backing byte of the buffer most recently
// returned to the pool. Holding that pointer keeps the allocation alive,
// so observing the same pointer on the next PutBuf cannot be an
// address-reuse coincidence — it is the same buffer returned twice in a
// row, the cheap-to-catch core of every double-put bug. The check is one
// atomic swap; GetBuf clears the sentinel when it hands the remembered
// buffer back out, so put→get→put of one buffer stays legal. At most one
// pooled buffer (≤ maxPooledCap) is pinned at a time.
var lastPut atomic.Pointer[byte]

// PutBuf returns b's backing array to the pool. The caller must not use
// b (or any slice aliasing it) afterwards; returning the same buffer
// twice in a row panics. Oversized buffers are dropped on the floor for
// the GC instead of pinning the pool.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	p := &b[:1][0]
	if lastPut.Swap(p) == p {
		panic("wire: buffer returned to the pool twice")
	}
	b = b[:0]
	bufPool.Put(&b)
}

// Frame is one encoded wire frame — the 5-byte length/type header plus
// payload — backed by a pooled buffer and shared across writer
// goroutines by reference counting. Frames are immutable after creation.
// The creator holds one reference; every additional holder must Retain
// before the frame is handed to it and Release exactly once when done.
// When the count reaches zero the frame (and its buffer) returns to the
// pool; touching it after the final Release is a use-after-free bug.
type Frame struct {
	b    []byte
	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// NewFrame encodes msg as one complete frame with reference count 1.
func NewFrame(msg Msg) *Frame { return newFrame(msg, nil) }

// NewFrameCached is NewFrame through an EncodeCache: sibling batches
// that share an envelope section (First Bound push fan-out, hybrid relay
// forwards) serialize that section once and memcpy it thereafter.
func NewFrameCached(c *EncodeCache, msg Msg) *Frame { return newFrame(msg, c) }

func newFrame(msg Msg, c *EncodeCache) *Frame {
	f := framePool.Get().(*Frame)
	buf := f.b
	if cap(buf) == 0 {
		buf = GetBuf(minBufCap)
	}
	buf = append(buf[:0], 0, 0, 0, 0, byte(msg.Type()))
	buf = appendMsgCached(buf, msg, c)
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-frameHeaderSize))
	f.b = buf
	f.refs.Store(1)
	return f
}

// Bytes returns the full encoded frame (header + payload). The slice is
// valid only while the caller holds a reference.
func (f *Frame) Bytes() []byte { return f.b }

// Len returns the total frame length in bytes.
func (f *Frame) Len() int { return len(f.b) }

// frameFreed marks a frame whose final reference was released and which
// now belongs to the pool. Parked far below zero so that racing or stale
// Retain/Release calls land in unmistakably-freed territory instead of
// resurrecting a refcount the pool may already have handed to a new
// owner; newFrame stores 1 over it on reuse.
const frameFreed = int32(-1 << 30)

// Retain adds a reference and returns f for chaining. Retaining a frame
// after its final release panics: the frame may already be carrying a
// different message for a different owner.
func (f *Frame) Retain() *Frame {
	if n := f.refs.Add(1); n <= 1 {
		panic("wire: frame retained after its final release")
	}
	return f
}

// Release drops one reference; the last release returns the frame to the
// pool. Releasing more times than Retain+creation panics — an over-
// release means some writer could still be reading recycled bytes — and
// the freed sentinel distinguishes a release of a frame the pool already
// owns from a plain unbalanced release.
func (f *Frame) Release() {
	switch n := f.refs.Add(-1); {
	case n == 0:
		if cap(f.b) > maxPooledCap {
			f.b = nil
		}
		f.refs.Store(frameFreed)
		framePool.Put(f)
	case n < 0:
		if n <= frameFreed {
			panic("wire: frame released after it returned to the pool")
		}
		panic("wire: frame over-released")
	}
}

// AppendFrame appends msg as one complete frame (header + payload) to
// buf — the coalescing building block: a connection's writer appends
// every queued message to one buffer and hands the kernel a single
// write.
func AppendFrame(buf []byte, msg Msg) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, byte(msg.Type()))
	buf = AppendMsg(buf, msg)
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-frameHeaderSize))
	return buf
}

// batchFrameHeader is the frame header plus the fixed Batch payload
// header (push flag, installedUpTo, clientSeq, coversFrom, count) — the
// prefix CoalesceFrames parses and rewrites.
const batchFrameHeader = frameHeaderSize + 1 + 8 + 8 + 8 + 4

// CoalesceFrames merges two encoded, undelivered Batch frames into one
// — the superseding writer queue's in-place replacement for contiguous
// sequenced batches (DESIGN.md §13). Both frames must carry TypeBatch
// payloads with the same Push flag, and b must continue exactly where a
// ends: the first sequence b covers (its CoversFrom, or its ClientSeq
// when it is unmerged) must be a.ClientSeq+1. The merged frame keeps
// a's starting sequence as CoversFrom, takes b's ClientSeq and
// InstalledUpTo (the newer batch's, monotonic), and concatenates the
// envelope sections in order — applying it atomically is equivalent to
// applying a then b.
//
// On success the returned frame carries one fresh reference and the
// caller still owns its references on a and b (release them to complete
// the replacement). Returns (nil, false), touching nothing, when the
// frames are not mergeable.
func CoalesceFrames(a, b *Frame) (*Frame, bool) {
	ab, bb := a.Bytes(), b.Bytes()
	if len(ab) < batchFrameHeader || len(bb) < batchFrameHeader {
		return nil, false
	}
	if ab[4] != byte(TypeBatch) || bb[4] != byte(TypeBatch) {
		return nil, false
	}
	if ab[5] != bb[5] { // push flag: merged envelopes must process identically
		return nil, false
	}
	aSeq := binary.LittleEndian.Uint64(ab[14:])
	bSeq := binary.LittleEndian.Uint64(bb[14:])
	if aSeq == 0 || bSeq == 0 {
		return nil, false // unsequenced batches have no contiguity to merge on
	}
	aFrom := binary.LittleEndian.Uint64(ab[22:])
	if aFrom == 0 {
		aFrom = aSeq
	}
	bFrom := binary.LittleEndian.Uint64(bb[22:])
	if bFrom == 0 {
		bFrom = bSeq
	}
	if bFrom != aSeq+1 {
		return nil, false
	}
	aCount := binary.LittleEndian.Uint32(ab[30:])
	bCount := binary.LittleEndian.Uint32(bb[30:])

	f := framePool.Get().(*Frame)
	buf := f.b
	if cap(buf) == 0 {
		buf = GetBuf(minBufCap)
	}
	buf = append(buf[:0], 0, 0, 0, 0, byte(TypeBatch))
	buf = append(buf, ab[5])                                       // push flag
	buf = binary.LittleEndian.AppendUint64(buf, binary.LittleEndian.Uint64(bb[6:])) // b's InstalledUpTo
	buf = binary.LittleEndian.AppendUint64(buf, bSeq)
	buf = binary.LittleEndian.AppendUint64(buf, aFrom)
	buf = binary.LittleEndian.AppendUint32(buf, aCount+bCount)
	buf = append(buf, ab[batchFrameHeader:]...)
	buf = append(buf, bb[batchFrameHeader:]...)
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-frameHeaderSize))
	f.b = buf
	f.refs.Store(1)
	return f, true
}

// EncodeCache memoizes the envelope section of the last Batch (or Relay
// inner) it encoded, keyed by the identity of the Envs slice. Sibling
// batches built for a push fan-out share one Envs backing array and
// differ only in the 29-byte per-recipient header, so the envelope
// bytes — the bulk of the frame — are encoded exactly once per tick and
// every further recipient costs a memcpy.
//
// The cache trusts that envelopes are immutable while it lives (the
// engine stamps them once, before fan-out). It is single-goroutine; the
// transport keeps one per dispatch loop and Resets it when done.
type EncodeCache struct {
	key  *action.Envelope // identity of the cached Envs slice
	n    int
	tail []byte
	hits uint64
}

func (c *EncodeCache) envTail(envs []action.Envelope) []byte {
	if c.key == &envs[0] && c.n == len(envs) {
		c.hits++
		return c.tail
	}
	if c.tail == nil {
		c.tail = GetBuf(minBufCap)
	}
	c.tail = c.tail[:0]
	for _, e := range envs {
		c.tail = appendEnvelope(c.tail, e)
	}
	c.key, c.n = &envs[0], len(envs)
	return c.tail
}

// Hits reports how many encodes were served from the cached section.
func (c *EncodeCache) Hits() uint64 { return c.hits }

// Reset forgets the cached section and returns its buffer to the pool.
func (c *EncodeCache) Reset() {
	if c.tail != nil {
		PutBuf(c.tail)
		c.tail = nil
	}
	c.key, c.n = nil, 0
}
