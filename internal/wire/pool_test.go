package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"seve/internal/action"
	"seve/internal/world"
)

// sampleMsgs returns one instance of every message type, including a
// batch mixing a registered application action with a blind write.
func sampleMsgs() []Msg {
	bw := action.NewBlindWrite(action.ID{Client: action.OriginServer, Seq: 1},
		[]world.Write{{ID: 5, Val: world.Value{1, 2}}, {ID: 6, Val: nil}})
	ta := &testAct{id: action.ID{Client: 2, Seq: 4}, A: 3.25, B: -1}
	return []Msg{
		&Submit{Env: env(0, 2, ta)},
		&Batch{
			Envs:          []action.Envelope{env(10, action.OriginServer, bw), env(11, 2, ta)},
			Push:          true,
			InstalledUpTo: 9,
			ClientSeq:     4,
			CoversFrom:    2,
		},
		&Completion{Seq: 77, By: 4, Res: action.Result{OK: true,
			Writes: []world.Write{{ID: 1, Val: world.Value{9.25}}}}},
		&Drop{ActID: action.ID{Client: 6, Seq: 3}},
		&Hello{InterestMask: 0b1010},
		&LockGrant{Seq: 12, ActID: action.ID{Client: 1, Seq: 2}},
		&Relay{
			Targets:    []action.ClientID{3, 8},
			TargetSeqs: []uint64{5, 9},
			Inner:      &Batch{Envs: []action.Envelope{env(12, 2, ta)}, Push: true},
		},
		&Welcome{You: 9, Token: 0xfeed, Init: []world.Write{{ID: 1, Val: world.Value{5}}}},
		&Resume{Token: 0xfeed, LastBatchSeq: 41},
		&CatchUp{
			OK:            true,
			Snapshot:      true,
			InstalledUpTo: 88,
			NextBatchSeq:  42,
			LastActSeq:    7,
			DroppedActs:   []action.ID{{Client: 2, Seq: 6}},
			Writes:        []world.Write{{ID: 3, Val: world.Value{1.5, -2}}},
		},
		&Quarantine{Reason: 2, Seq: 31, Detail: 7},
	}
}

// TestAppendMsgMatchesEncode pins the append-style APIs to Encode: the
// same bytes, appended after any prefix, with EncodeTo reusing the
// buffer it is given.
func TestAppendMsgMatchesEncode(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	for _, m := range sampleMsgs() {
		want := Encode(m)
		if got := AppendMsg(append([]byte(nil), prefix...), m); !bytes.Equal(got[len(prefix):], want) {
			t.Errorf("%T: AppendMsg diverges from Encode", m)
		}
		buf := make([]byte, 3, 256)
		out := EncodeTo(buf, m)
		if !bytes.Equal(out, want) {
			t.Errorf("%T: EncodeTo diverges from Encode", m)
		}
		if len(want) <= 256 && &out[0] != &buf[:1][0] {
			t.Errorf("%T: EncodeTo did not reuse the supplied buffer", m)
		}
	}
}

// TestFrameMatchesWriteFrame pins the three framing paths — Frame,
// AppendFrame, WriteFrame — to identical bytes.
func TestFrameMatchesWriteFrame(t *testing.T) {
	for _, m := range sampleMsgs() {
		var w bytes.Buffer
		if err := WriteFrame(&w, m); err != nil {
			t.Fatal(err)
		}
		if got := AppendFrame(nil, m); !bytes.Equal(got, w.Bytes()) {
			t.Errorf("%T: AppendFrame diverges from WriteFrame", m)
		}
		f := NewFrame(m)
		if !bytes.Equal(f.Bytes(), w.Bytes()) {
			t.Errorf("%T: Frame diverges from WriteFrame", m)
		}
		if f.Len() != frameHeaderSize+m.WireSize() {
			t.Errorf("%T: frame len %d, want header+WireSize %d",
				m, f.Len(), frameHeaderSize+m.WireSize())
		}
		f.Release()
	}
}

// TestEncodeCacheFanOut is the stream-equivalence proof for encode-once
// fan-out: sibling batches sharing one Envs slice, differing only in the
// per-recipient header, must encode through the cache to exactly the
// bytes the per-recipient encoder produces — while serializing the
// envelope section once.
func TestEncodeCacheFanOut(t *testing.T) {
	bw := action.NewBlindWrite(action.ID{Client: action.OriginServer, Seq: 2},
		[]world.Write{{ID: 7, Val: world.Value{4}}})
	shared := []action.Envelope{
		env(20, action.OriginServer, bw),
		env(21, 1, &testAct{id: action.ID{Client: 1, Seq: 9}, A: 0.5}),
		env(22, 3, &testAct{id: action.ID{Client: 3, Seq: 2}, B: 8}),
	}
	const recipients = 16
	var cache EncodeCache
	defer cache.Reset()
	for i := 0; i < recipients; i++ {
		sib := &Batch{
			Envs:          shared,
			Push:          i%2 == 0,
			InstalledUpTo: uint64(30 + i),
			ClientSeq:     uint64(i + 1),
		}
		want := append([]byte{0, 0, 0, 0, byte(TypeBatch)}, Encode(sib)...)
		putLen(want)
		f := NewFrameCached(&cache, sib)
		if !bytes.Equal(f.Bytes(), want) {
			t.Fatalf("recipient %d: cached frame diverges from per-recipient encoding", i)
		}
		f.Release()
	}
	if cache.Hits() != recipients-1 {
		t.Fatalf("cache hits = %d, want %d (envelope section encoded once)",
			cache.Hits(), recipients-1)
	}

	// Relay forwards share the inner Envs too.
	r := &Relay{Targets: []action.ClientID{1, 2}, TargetSeqs: []uint64{7, 8},
		Inner: &Batch{Envs: shared, Push: true, ClientSeq: 7}}
	want := Encode(r)
	f := NewFrameCached(&cache, r)
	if !bytes.Equal(f.Bytes()[frameHeaderSize:], want) {
		t.Fatal("cached relay diverges from Encode")
	}
	f.Release()
	if cache.Hits() != recipients {
		t.Fatalf("relay did not hit the cached envelope section (hits=%d)", cache.Hits())
	}

	// A different Envs slice must miss and re-encode, not serve stale bytes.
	other := []action.Envelope{env(40, 1, &testAct{id: action.ID{Client: 1, Seq: 10}})}
	ob := &Batch{Envs: other, ClientSeq: 9}
	f = NewFrameCached(&cache, ob)
	if !bytes.Equal(f.Bytes()[frameHeaderSize:], Encode(ob)) {
		t.Fatal("cache served stale envelope section for a different batch")
	}
	f.Release()
}

// TestCoalesceFrames proves the in-place merge primitive of the
// superseding writer queue: coalescing two contiguous batch frames
// yields a frame whose decoded content is exactly the concatenation of
// the inputs, carrying the covered-range metadata, and every frame —
// inputs and output — returns cleanly to the pool.
func TestCoalesceFrames(t *testing.T) {
	ta := &testAct{id: action.ID{Client: 2, Seq: 1}, A: 1}
	tb := &testAct{id: action.ID{Client: 3, Seq: 2}, B: 7}
	mkBatch := func(seq, covers, installed uint64, push bool, envs ...action.Envelope) *Frame {
		return NewFrame(&Batch{Envs: envs, Push: push, InstalledUpTo: installed,
			ClientSeq: seq, CoversFrom: covers})
	}
	a := mkBatch(5, 0, 10, true, env(30, 2, ta))
	b := mkBatch(6, 0, 12, true, env(31, 3, tb))
	m, ok := CoalesceFrames(a, b)
	if !ok {
		t.Fatal("contiguous batches did not coalesce")
	}
	a.Release()
	b.Release()
	got, err := Decode(TypeBatch, m.Bytes()[frameHeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	mb := got.(*Batch)
	if mb.ClientSeq != 6 || mb.CoversFrom != 5 || mb.InstalledUpTo != 12 || !mb.Push {
		t.Fatalf("merged header = seq %d covers %d installed %d push %v",
			mb.ClientSeq, mb.CoversFrom, mb.InstalledUpTo, mb.Push)
	}
	if len(mb.Envs) != 2 || mb.Envs[0].Seq != 30 || mb.Envs[1].Seq != 31 {
		t.Fatalf("merged envs = %+v", mb.Envs)
	}

	// A merged frame keeps merging: appending seq 7 extends the range.
	c := mkBatch(7, 0, 12, true, env(32, 2, ta))
	m2, ok := CoalesceFrames(m, c)
	if !ok {
		t.Fatal("merged frame did not coalesce with its successor")
	}
	m.Release()
	c.Release()
	got2, err := Decode(TypeBatch, m2.Bytes()[frameHeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	m2b := got2.(*Batch)
	if m2b.ClientSeq != 7 || m2b.CoversFrom != 5 || len(m2b.Envs) != 3 {
		t.Fatalf("chained merge = seq %d covers %d envs %d",
			m2b.ClientSeq, m2b.CoversFrom, len(m2b.Envs))
	}
	m2.Release()
}

// TestCoalesceFramesRefusals pins every gate that must refuse a merge:
// wrong type, mismatched push flags, unsequenced batches, and sequence
// gaps all return (nil, false) without touching the inputs.
func TestCoalesceFramesRefusals(t *testing.T) {
	ta := &testAct{id: action.ID{Client: 2, Seq: 1}}
	batch := func(seq uint64, push bool) *Frame {
		return NewFrame(&Batch{Envs: []action.Envelope{env(40, 2, ta)},
			Push: push, ClientSeq: seq})
	}
	cases := []struct {
		name string
		mk   func() (*Frame, *Frame)
	}{
		{"non-batch first", func() (*Frame, *Frame) { return NewFrame(&Hello{}), batch(2, true) }},
		{"non-batch second", func() (*Frame, *Frame) {
			return batch(1, true), NewFrame(&Drop{ActID: action.ID{Client: 1, Seq: 1}})
		}},
		{"push mismatch", func() (*Frame, *Frame) { return batch(1, true), batch(2, false) }},
		{"unsequenced first", func() (*Frame, *Frame) { return batch(0, true), batch(2, true) }},
		{"unsequenced second", func() (*Frame, *Frame) { return batch(1, true), batch(0, true) }},
		{"gap", func() (*Frame, *Frame) { return batch(1, true), batch(3, true) }},
		{"reversed", func() (*Frame, *Frame) { return batch(2, true), batch(1, true) }},
	}
	for _, tc := range cases {
		fa, fb := tc.mk()
		before := append([]byte(nil), fa.Bytes()...)
		if f, ok := CoalesceFrames(fa, fb); ok || f != nil {
			t.Errorf("%s: merged, want refusal", tc.name)
		}
		if !bytes.Equal(fa.Bytes(), before) {
			t.Errorf("%s: refusal mutated input", tc.name)
		}
		fa.Release()
		fb.Release()
	}
}

func putLen(frame []byte) {
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-frameHeaderSize))
}

// TestFrameRefcount exercises the sharing contract: the frame's bytes
// stay valid until the last holder releases, and the final release
// recycles the frame.
func TestFrameRefcount(t *testing.T) {
	m := &Drop{ActID: action.ID{Client: 1, Seq: 1}}
	f := NewFrame(m)
	want := append([]byte(nil), f.Bytes()...)
	f.Retain()
	f.Release()
	if !bytes.Equal(f.Bytes(), want) {
		t.Fatal("frame bytes changed while a reference was held")
	}
	f.Release()

	f2 := NewFrame(&Hello{InterestMask: 1})
	if !bytes.Equal(f2.Bytes(), append([]byte{8, 0, 0, 0, byte(TypeHello)},
		Encode(&Hello{InterestMask: 1})...)) {
		t.Fatal("recycled frame encoded wrong bytes")
	}
	f2.Release()
}

func TestFrameOverReleasePanics(t *testing.T) {
	f := NewFrame(&Hello{})
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	//seve:vet-ignore pooldiscipline deliberate over-release; this test locks in the panic
	f.Release()
}

// TestGetPutBufRecycles checks the pool hands back usable buffers and
// drops oversized ones.
func TestGetPutBufRecycles(t *testing.T) {
	b := GetBuf(64)
	if len(b) != 0 || cap(b) < 64 {
		t.Fatalf("GetBuf(64) = len %d cap %d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	huge := make([]byte, 0, maxPooledCap+1)
	PutBuf(huge) // must not pin; just exercising the size gate
	b2 := GetBuf(16)
	if len(b2) != 0 {
		t.Fatalf("pooled buffer returned dirty: len %d", len(b2))
	}
	PutBuf(b2)
}

// TestPutBufTwicePanics locks in the double-put diagnostic: returning
// the same buffer twice in a row must panic instead of letting two
// goroutines share one pooled backing array. The put→get→put round trip
// beforehand proves legitimate reuse does not trip the check.
func TestPutBufTwicePanics(t *testing.T) {
	b := GetBuf(16)
	b = append(b, 1)
	PutBuf(b)
	b = GetBuf(16) // hands the same buffer back and clears the sentinel
	PutBuf(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double PutBuf did not panic")
		}
	}()
	//seve:vet-ignore pooldiscipline deliberate double put; this test locks in the panic
	PutBuf(b)
}

// TestRetainAfterReleasePanics locks in the freed-frame sentinel:
// retaining a frame the pool already owns must panic, not resurrect it.
func TestRetainAfterReleasePanics(t *testing.T) {
	f := NewFrame(&Hello{})
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after final release did not panic")
		}
	}()
	//seve:vet-ignore pooldiscipline deliberate retain after free; this test locks in the panic
	f.Retain()
}
