package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at Decode for every message type and
// checks the codec's two safety properties: no panics or unbounded
// allocations on hostile input, and canonicalization — whatever Decode
// accepts must re-encode to a payload that round-trips to the same
// bytes (Encode∘Decode is a fixpoint). The seed corpus covers all
// registered MsgTypes via the encoder itself.
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		f.Add(byte(m.Type()), Encode(m))
	}
	// A few hostile shapes: huge counts with tiny bodies.
	f.Add(byte(TypeBatch), []byte{0, 9, 9, 9, 9, 9, 9, 9, 9, 0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255})
	f.Add(byte(TypeBatch), []byte{
		1,                      // push flag
		9, 9, 9, 9, 9, 9, 9, 9, // installedUpTo
		4, 0, 0, 0, 0, 0, 0, 0, // clientSeq
		2, 0, 0, 0, 0, 0, 0, 0, // coversFrom (coalesced range start)
		255, 255, 255, 255, // huge count, tiny body
	})
	f.Add(byte(TypeCompletion), []byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 1, 255, 255, 255, 255})
	f.Add(byte(TypeWelcome), []byte{1, 0, 0, 0, 255, 255, 255, 255})
	f.Add(byte(TypeRelay), []byte{255, 255, 255, 255})
	// Adversarial resume/catch-up: forged tokens are structurally valid
	// (session lookup is the server's problem, not the codec's), forged
	// drop counts must be rejected before allocation.
	f.Add(byte(TypeResume), []byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(byte(TypeCatchUp), []byte{3, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 255, 255, 255, 255})
	// Hostile quarantine verdicts: truncated at every boundary of the
	// fixed 17-byte layout, and an unknown reason code (decodes fine —
	// reason semantics live in internal/integrity, not the codec).
	f.Add(byte(TypeQuarantine), []byte{})
	f.Add(byte(TypeQuarantine), []byte{3})
	f.Add(byte(TypeQuarantine), []byte{3, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add(byte(TypeQuarantine), []byte{3, 1, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0})
	f.Add(byte(TypeQuarantine), []byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, typ byte, data []byte) {
		m, err := Decode(MsgType(typ), data)
		if err != nil {
			return
		}
		enc := Encode(m)
		m2, err := Decode(MsgType(typ), enc)
		if err != nil {
			t.Fatalf("re-decoding canonical encoding failed: %v", err)
		}
		enc2 := Encode(m2)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("Encode(Decode(b)) not a fixpoint:\n first %x\nsecond %x", enc, enc2)
		}
		if sz := m2.WireSize(); sz != len(enc2) {
			t.Fatalf("WireSize %d != encoded size %d", sz, len(enc2))
		}
	})
}
