// Package wire defines the messages exchanged between clients and the
// server and their binary encoding. The same encoding serves two
// purposes: it frames traffic in the real TCP deployment
// (cmd/seve-server, cmd/seve-client), and its byte counts drive the
// simulated bandwidth model behind the Figure 9 data-transfer experiment.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"seve/internal/action"
	"seve/internal/world"
)

// MsgType discriminates messages on the wire.
type MsgType uint8

// Message type codes.
const (
	TypeSubmit     MsgType = 1 // client → server: a new action (Algorithm 1/4, step 2)
	TypeBatch      MsgType = 2 // server → client: serialized actions (Algorithm 2/6 reply or First Bound push)
	TypeCompletion MsgType = 3 // client → server: stable result of an action (Algorithm 4, step 5)
	TypeDrop       MsgType = 4 // server → client: action aborted by the Information Bound Model
	TypeHello      MsgType = 5 // client → server: join (real deployment only)
	TypeWelcome    MsgType = 6 // server → client: assigned id + initial world (real deployment only)
	TypeLockGrant  MsgType = 7 // server → client: locks acquired (lock-based baseline, Section II-B)
	TypeRelay      MsgType = 8 // server → relay client → peers: hybrid P2P push delegation (Section VII)
	TypeResume     MsgType = 9 // client → server: reconnect with session token + last applied batch
	TypeCatchUp    MsgType = 10 // server → client: resume verdict + catch-up seed (suffix or snapshot)
	TypeQuarantine MsgType = 11 // server → client: integrity quarantine verdict; the connection closes after it
)

// Msg is any protocol message. WireSize reports the exact encoded size in
// bytes (excluding the 5-byte frame header used on TCP), which the
// network simulator charges against link bandwidth.
type Msg interface {
	WireSize() int
	Type() MsgType
}

// Submit carries a freshly created action from its origin client to the
// server.
type Submit struct {
	Env action.Envelope
}

// Type returns TypeSubmit.
func (m *Submit) Type() MsgType { return TypeSubmit }

// WireSize returns the encoded size.
func (m *Submit) WireSize() int { return envelopeSize(m.Env) }

// Batch carries serialized actions from the server to a client: the reply
// to a submission (all actions between posC and pos(a) under Algorithm 2,
// or the transitive closure plus blind write under Algorithm 6), or a
// proactive First Bound push.
type Batch struct {
	Envs []action.Envelope
	// Push marks proactive First Bound batches, which require no reply.
	Push bool
	// InstalledUpTo piggybacks the server's last installed serial
	// position so clients can garbage-collect old versions
	// (Section III-C memory optimization).
	InstalledUpTo uint64
	// ClientSeq is the per-recipient batch sequence number. Batches from
	// a core.Server are numbered 1, 2, 3, … per client and the client
	// processes them in that order, buffering gaps: with hybrid relays a
	// batch can take a two-hop path and arrive after a younger direct
	// reply, and out-of-order application would violate the closure's
	// sent() assumptions. Zero marks an unsequenced batch (baseline
	// architectures), processed immediately.
	ClientSeq uint64
	// CoversFrom, when non-zero, marks a coalesced batch: the transport's
	// superseding writer queue merged the undelivered batches numbered
	// CoversFrom..ClientSeq (contiguous, same Push flag) into this one,
	// envelopes concatenated in the original order. Applying the merged
	// batch atomically equals applying the originals in sequence, so the
	// client treats it as satisfying every covered sequence number. Zero
	// marks an ordinary single-sequence batch.
	CoversFrom uint64
}

// Type returns TypeBatch.
func (m *Batch) Type() MsgType { return TypeBatch }

// WireSize returns the encoded size.
func (m *Batch) WireSize() int {
	n := 1 + 8 + 8 + 8 + 4 // push flag + installedUpTo + clientSeq + coversFrom + count
	for _, e := range m.Envs {
		n += envelopeSize(e)
	}
	return n
}

// Completion reports to the server the stable result u of action Seq, as
// computed by client By against ζCS. The server installs the writes into
// ζS (Algorithm 5, step 5). Under the failure-tolerance extension every
// client that evaluates an action sends one, and By identifies which.
type Completion struct {
	Seq uint64
	By  action.ClientID
	Res action.Result
}

// Type returns TypeCompletion.
func (m *Completion) Type() MsgType { return TypeCompletion }

// WireSize returns the encoded size.
func (m *Completion) WireSize() int {
	return 8 + 4 + resultSize(m.Res)
}

// Drop tells an action's origin client that the Information Bound Model
// invalidated it (Algorithm 7: isValid = false); the client aborts the
// action locally and reconciles.
type Drop struct {
	ActID action.ID
}

// Type returns TypeDrop.
func (m *Drop) Type() MsgType { return TypeDrop }

// WireSize returns the encoded size.
func (m *Drop) WireSize() int { return 8 }

// Hello requests to join (real deployment).
type Hello struct {
	// InterestMask selects interest classes for inconsequential action
	// elimination; 0 means all classes.
	InterestMask uint64
}

// Type returns TypeHello.
func (m *Hello) Type() MsgType { return TypeHello }

// WireSize returns the encoded size.
func (m *Hello) WireSize() int { return 8 }

// LockGrant tells a client that all locks for its pending action were
// acquired (the lock-based protocol family of Section II-B): the client
// may now execute the action and return its effect as a Completion. Seq
// is the action's serialized position; ActID names which pending action
// was granted.
type LockGrant struct {
	Seq   uint64
	ActID action.ID
}

// Type returns TypeLockGrant.
func (m *LockGrant) Type() MsgType { return TypeLockGrant }

// WireSize returns the encoded size.
func (m *LockGrant) WireSize() int { return 8 + 8 }

// Relay is the hybrid-architecture push (the Section VII future-work
// direction, implemented): instead of unicasting one push Batch per
// client, the server sends a shared neighbourhood Batch to a single
// relay client, which applies it and forwards it peer-to-peer to the
// other targets. Server egress drops by roughly the neighbourhood size.
type Relay struct {
	// Targets are the clients that must receive Inner — the relay itself
	// (first entry by convention) plus its peers.
	Targets []action.ClientID
	// TargetSeqs are the per-recipient ClientSeq values, parallel to
	// Targets; the relay rewrites them into the forwarded copies.
	TargetSeqs []uint64
	Inner      *Batch
}

// Type returns TypeRelay.
func (m *Relay) Type() MsgType { return TypeRelay }

// WireSize returns the encoded size.
func (m *Relay) WireSize() int { return 4 + 12*len(m.Targets) + m.Inner.WireSize() }

// Welcome assigns the joining client its id and ships the initial world
// (real deployment).
type Welcome struct {
	You action.ClientID
	// Token is the session token the client presents in a later Resume.
	// Zero means the server does not retain sessions (Config.ResumeWindow
	// disabled) and reconnection must rejoin from scratch.
	Token uint64
	// Boot is the server's recovery generation — how many times its
	// durable store has been opened. The client remembers it; a CatchUp
	// carrying a different Boot means the serial timeline restarted and
	// retained completions from the old boot must not be re-sent.
	Boot uint64
	Init []world.Write
}

// Type returns TypeWelcome.
func (m *Welcome) Type() MsgType { return TypeWelcome }

// WireSize returns the encoded size.
func (m *Welcome) WireSize() int {
	return 4 + 8 + 8 + writesSize(m.Init)
}

// Resume asks the server to revive the session identified by Token
// (issued in Welcome) after a connection loss. LastBatchSeq is the
// highest contiguously applied per-client batch sequence number
// (Batch.ClientSeq); the server replays everything after it, or falls
// back to a snapshot when its retained window no longer reaches back
// that far.
type Resume struct {
	Token        uint64
	LastBatchSeq uint64
}

// Type returns TypeResume.
func (m *Resume) Type() MsgType { return TypeResume }

// WireSize returns the encoded size.
func (m *Resume) WireSize() int { return 8 + 8 }

// CatchUp is the server's verdict on a Resume. With OK unset the
// session is unknown (token expired or never issued) and the client
// must rejoin via Hello. With OK set and Snapshot unset, the retained
// suffix of batches follows this message and the client resumes by
// applying them in ClientSeq order as usual. With Snapshot set the
// retained window no longer covers the client's gap: Writes carries the
// full blind write W(S, ζS(S)) over the client's interest set at the
// server's install point (Algorithm 6 generalized to the whole state),
// the client rebuilds ζCS/ζCO from it, and batch numbering restarts at
// NextBatchSeq.
type CatchUp struct {
	OK       bool
	Snapshot bool
	// Boot is the server's recovery generation at the time of the
	// verdict. When it differs from the Boot the client joined under,
	// the server restarted between the sessions: serial positions above
	// BootFloor were rolled back and re-issued, so everything the client
	// holds for them — retained completions, committed-but-uninstalled
	// own actions, stable versions — is fenced or rolled back.
	Boot uint64
	// BootFloor is the install point the current boot recovered at: the
	// highest serial position that survived the most recent restart.
	// InstalledUpTo cannot serve as the fence because the restarted
	// server may have re-issued positions above the floor before this
	// resume arrived. Zero on a never-restarted server.
	BootFloor uint64
	// InstalledUpTo is the server's install point at the snapshot cut (or
	// at resume time for a suffix replay); the rebuilt stable store is
	// seeded at this version.
	InstalledUpTo uint64
	// NextBatchSeq is the ClientSeq the next batch will carry after a
	// snapshot resume (suffix replays keep the old numbering; zero).
	NextBatchSeq uint64
	// LastActSeq is the per-client action sequence number of the last
	// submission the server accepted from this client; anything the
	// client still holds queued above it was lost in flight and must be
	// re-submitted.
	LastActSeq uint32
	// DroppedActs lists actions the Information Bound Model invalidated
	// while the client was away (their Drop messages were lost with the
	// connection).
	DroppedActs []action.ID
	// Writes is the snapshot blind write; empty for suffix replays.
	Writes []world.Write
}

// Type returns TypeCatchUp.
func (m *CatchUp) Type() MsgType { return TypeCatchUp }

// WireSize returns the encoded size.
func (m *CatchUp) WireSize() int {
	return 1 + 8 + 8 + 8 + 8 + 4 + 4 + 8*len(m.DroppedActs) + writesSize(m.Writes)
}

// Quarantine is the server's final verdict on a client that violated
// semantic integrity (internal/integrity): a forged write set, a
// tampered completion result, or a replayed completion that disagrees
// with the installed history. The verdict is the last message the client
// receives — the transport closes the connection after delivering it,
// and the session token is dead (resume and rejoin are rejected while
// the ledger stays quarantined).
type Quarantine struct {
	// Reason is the integrity.Violation code.
	Reason uint8
	// Seq is the serial position of the offending completion; zero when
	// the violation was not tied to a position.
	Seq uint64
	// Detail carries reason-specific evidence (the forged object id for
	// footprint violations); zero otherwise.
	Detail uint64
}

// Type returns TypeQuarantine.
func (m *Quarantine) Type() MsgType { return TypeQuarantine }

// WireSize returns the encoded size.
func (m *Quarantine) WireSize() int { return 1 + 8 + 8 }

// writesSize is the encoded size of a writes section: count(4) +
// records (id(8) len(2) attrs).
func writesSize(ws []world.Write) int {
	n := 4
	for _, w := range ws {
		n += 8 + 2 + 8*len(w.Val)
	}
	return n
}

// envelopeSize is the encoded size of one envelope: seq(8) origin(4)
// actClient(4) actSeq(4) kind(2) bodyLen(4) body.
func envelopeSize(e action.Envelope) int {
	return 8 + 4 + 4 + 4 + 2 + 4 + len(e.Act.MarshalBody())
}

// resultSize is the encoded size of a result: ok(1) count(4) + records.
func resultSize(r action.Result) int {
	n := 1 + 4
	for _, w := range r.Writes {
		n += 8 + 2 + 8*len(w.Val)
	}
	return n
}

// Decoder reconstructs application actions from their kind and body. The
// registry is global because action kinds are global protocol constants;
// it is guarded for the concurrent TCP deployment.
type Decoder func(id action.ID, body []byte) (action.Action, error)

var (
	registryMu sync.RWMutex
	registry   = map[action.Kind]Decoder{}
)

// RegisterKind installs the decoder for an action kind. Registering the
// same kind twice panics: two applications disagreeing about a kind code
// is a deployment error that must not be masked.
func RegisterKind(k action.Kind, d Decoder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[k]; dup {
		panic(fmt.Sprintf("wire: action kind %d registered twice", k))
	}
	registry[k] = d
}

// RegisteredKinds returns the registered kinds in sorted order.
func RegisteredKinds() []action.Kind {
	registryMu.RLock()
	defer registryMu.RUnlock()
	ks := make([]action.Kind, 0, len(registry))
	for k := range registry {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func decoderFor(k action.Kind) (Decoder, error) {
	if k == action.KindBlindWrite {
		return func(id action.ID, body []byte) (action.Action, error) {
			return action.UnmarshalBlindWrite(id, body)
		}, nil
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	d, ok := registry[k]
	if !ok {
		return nil, fmt.Errorf("wire: unknown action kind %d", k)
	}
	return d, nil
}

// --- encoding helpers ---

func appendEnvelope(buf []byte, e action.Envelope) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Origin))
	id := e.Act.ID()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id.Client))
	buf = binary.LittleEndian.AppendUint32(buf, id.Seq)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(e.Act.Kind()))
	// Reserve the body length and backfill it after appending the body,
	// so BodyAppender actions serialize straight into buf with no
	// intermediate slice.
	lenOff := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	if ba, ok := e.Act.(action.BodyAppender); ok {
		buf = ba.AppendBody(buf)
	} else {
		buf = append(buf, e.Act.MarshalBody()...)
	}
	binary.LittleEndian.PutUint32(buf[lenOff:], uint32(len(buf)-lenOff-4))
	return buf
}

func decodeEnvelope(buf []byte) (action.Envelope, int, error) {
	const hdr = 8 + 4 + 4 + 4 + 2 + 4
	if len(buf) < hdr {
		return action.Envelope{}, 0, fmt.Errorf("wire: envelope header truncated")
	}
	seq := binary.LittleEndian.Uint64(buf)
	origin := action.ClientID(int32(binary.LittleEndian.Uint32(buf[8:])))
	actID := action.ID{
		Client: action.ClientID(int32(binary.LittleEndian.Uint32(buf[12:]))),
		Seq:    binary.LittleEndian.Uint32(buf[16:]),
	}
	kind := action.Kind(binary.LittleEndian.Uint16(buf[20:]))
	blen := int(binary.LittleEndian.Uint32(buf[22:]))
	if len(buf) < hdr+blen {
		return action.Envelope{}, 0, fmt.Errorf("wire: envelope body truncated")
	}
	dec, err := decoderFor(kind)
	if err != nil {
		return action.Envelope{}, 0, err
	}
	act, err := dec(actID, buf[hdr:hdr+blen])
	if err != nil {
		return action.Envelope{}, 0, fmt.Errorf("wire: decoding kind %d: %w", kind, err)
	}
	return action.Envelope{Seq: seq, Origin: origin, Act: act}, hdr + blen, nil
}

func appendWrites(buf []byte, ws []world.Write) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ws)))
	for _, w := range ws {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.ID))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w.Val)))
		for _, f := range w.Val {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
	}
	return buf
}

func decodeWrites(buf []byte) ([]world.Write, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("wire: writes header truncated")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	// The count is untrusted: cap the allocation hint by what the buffer
	// could actually hold (≥10 bytes per record) so a forged count cannot
	// pre-allocate unboundedly before the loop's length checks reject it.
	capHint := n
	if max := (len(buf) - off) / 10; capHint > max {
		capHint = max
	}
	ws := make([]world.Write, 0, capHint)
	for i := 0; i < n; i++ {
		if len(buf) < off+10 {
			return nil, 0, fmt.Errorf("wire: write record %d truncated", i)
		}
		id := world.ObjectID(binary.LittleEndian.Uint64(buf[off:]))
		attrs := int(binary.LittleEndian.Uint16(buf[off+8:]))
		off += 10
		if len(buf) < off+attrs*8 {
			return nil, 0, fmt.Errorf("wire: write value %d truncated", i)
		}
		val := make(world.Value, attrs)
		for j := 0; j < attrs; j++ {
			val[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+j*8:]))
		}
		off += attrs * 8
		ws = append(ws, world.Write{ID: id, Val: val})
	}
	return ws, off, nil
}

// Encode serializes msg (without the TCP frame header) into a fresh
// buffer. Hot paths should prefer AppendMsg/EncodeTo with a pooled or
// reused buffer; Encode remains for one-shot callers and tests.
func Encode(msg Msg) []byte {
	return AppendMsg(nil, msg)
}

// EncodeTo serializes msg into buf's backing array, overwriting its
// contents, and returns the encoded payload (which may be a grown
// slice). It is the buffer-reusing form of Encode.
func EncodeTo(buf []byte, msg Msg) []byte {
	return AppendMsg(buf[:0], msg)
}

// AppendMsg appends msg's encoding (without the TCP frame header) to buf
// and returns the extended slice.
func AppendMsg(buf []byte, msg Msg) []byte {
	return appendMsgCached(buf, msg, nil)
}

// appendMsgCached is AppendMsg with an optional encode-once cache for
// the envelope section of Batch and Relay messages.
func appendMsgCached(buf []byte, msg Msg, c *EncodeCache) []byte {
	switch m := msg.(type) {
	case *Submit:
		return appendEnvelope(buf, m.Env)
	case *Batch:
		return appendBatch(buf, m, c)
	case *Completion:
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.By))
		ok := byte(0)
		if m.Res.OK {
			ok = 1
		}
		buf = append(buf, ok)
		return appendWrites(buf, m.Res.Writes)
	case *Drop:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.ActID.Client))
		return binary.LittleEndian.AppendUint32(buf, m.ActID.Seq)
	case *Hello:
		return binary.LittleEndian.AppendUint64(buf, m.InterestMask)
	case *LockGrant:
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.ActID.Client))
		return binary.LittleEndian.AppendUint32(buf, m.ActID.Seq)
	case *Relay:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Targets)))
		for i, t := range m.Targets {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
			var seq uint64
			if i < len(m.TargetSeqs) {
				seq = m.TargetSeqs[i]
			}
			buf = binary.LittleEndian.AppendUint64(buf, seq)
		}
		return appendBatch(buf, m.Inner, c)
	case *Welcome:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.You))
		buf = binary.LittleEndian.AppendUint64(buf, m.Token)
		buf = binary.LittleEndian.AppendUint64(buf, m.Boot)
		return appendWrites(buf, m.Init)
	case *Resume:
		buf = binary.LittleEndian.AppendUint64(buf, m.Token)
		return binary.LittleEndian.AppendUint64(buf, m.LastBatchSeq)
	case *CatchUp:
		var flags byte
		if m.OK {
			flags |= 1
		}
		if m.Snapshot {
			flags |= 2
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, m.Boot)
		buf = binary.LittleEndian.AppendUint64(buf, m.BootFloor)
		buf = binary.LittleEndian.AppendUint64(buf, m.InstalledUpTo)
		buf = binary.LittleEndian.AppendUint64(buf, m.NextBatchSeq)
		buf = binary.LittleEndian.AppendUint32(buf, m.LastActSeq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.DroppedActs)))
		for _, id := range m.DroppedActs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(id.Client))
			buf = binary.LittleEndian.AppendUint32(buf, id.Seq)
		}
		return appendWrites(buf, m.Writes)
	case *Quarantine:
		buf = append(buf, m.Reason)
		buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
		return binary.LittleEndian.AppendUint64(buf, m.Detail)
	default:
		panic(fmt.Sprintf("wire: cannot encode %T", msg))
	}
}

// appendBatch appends a Batch payload: the 29-byte per-recipient header
// (push flag, installedUpTo, clientSeq, coversFrom, count) followed by
// the envelope section, which sibling batches share and a non-nil cache
// serializes only once.
func appendBatch(buf []byte, m *Batch, c *EncodeCache) []byte {
	flag := byte(0)
	if m.Push {
		flag = 1
	}
	buf = append(buf, flag)
	buf = binary.LittleEndian.AppendUint64(buf, m.InstalledUpTo)
	buf = binary.LittleEndian.AppendUint64(buf, m.ClientSeq)
	buf = binary.LittleEndian.AppendUint64(buf, m.CoversFrom)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Envs)))
	if c != nil && len(m.Envs) > 0 {
		return append(buf, c.envTail(m.Envs)...)
	}
	for _, e := range m.Envs {
		buf = appendEnvelope(buf, e)
	}
	return buf
}

// Decode reconstructs a message of the given type from its encoded form.
func Decode(t MsgType, buf []byte) (Msg, error) {
	switch t {
	case TypeSubmit:
		env, _, err := decodeEnvelope(buf)
		if err != nil {
			return nil, err
		}
		return &Submit{Env: env}, nil
	case TypeBatch:
		if len(buf) < 29 {
			return nil, fmt.Errorf("wire: batch header truncated")
		}
		m := &Batch{
			Push:          buf[0] == 1,
			InstalledUpTo: binary.LittleEndian.Uint64(buf[1:]),
			ClientSeq:     binary.LittleEndian.Uint64(buf[9:]),
			CoversFrom:    binary.LittleEndian.Uint64(buf[17:]),
		}
		n := int(binary.LittleEndian.Uint32(buf[25:]))
		off := 29
		for i := 0; i < n; i++ {
			env, sz, err := decodeEnvelope(buf[off:])
			if err != nil {
				return nil, err
			}
			m.Envs = append(m.Envs, env)
			off += sz
		}
		return m, nil
	case TypeCompletion:
		if len(buf) < 13 {
			return nil, fmt.Errorf("wire: completion truncated")
		}
		m := &Completion{
			Seq: binary.LittleEndian.Uint64(buf),
			By:  action.ClientID(int32(binary.LittleEndian.Uint32(buf[8:]))),
		}
		m.Res.OK = buf[12] == 1
		ws, _, err := decodeWrites(buf[13:])
		if err != nil {
			return nil, err
		}
		m.Res.Writes = ws
		return m, nil
	case TypeDrop:
		if len(buf) < 8 {
			return nil, fmt.Errorf("wire: drop truncated")
		}
		return &Drop{ActID: action.ID{
			Client: action.ClientID(int32(binary.LittleEndian.Uint32(buf))),
			Seq:    binary.LittleEndian.Uint32(buf[4:]),
		}}, nil
	case TypeHello:
		if len(buf) < 8 {
			return nil, fmt.Errorf("wire: hello truncated")
		}
		return &Hello{InterestMask: binary.LittleEndian.Uint64(buf)}, nil
	case TypeLockGrant:
		if len(buf) < 16 {
			return nil, fmt.Errorf("wire: lock grant truncated")
		}
		return &LockGrant{
			Seq: binary.LittleEndian.Uint64(buf),
			ActID: action.ID{
				Client: action.ClientID(int32(binary.LittleEndian.Uint32(buf[8:]))),
				Seq:    binary.LittleEndian.Uint32(buf[12:]),
			},
		}, nil
	case TypeRelay:
		if len(buf) < 4 {
			return nil, fmt.Errorf("wire: relay truncated")
		}
		n := int(binary.LittleEndian.Uint32(buf))
		if len(buf) < 4+12*n {
			return nil, fmt.Errorf("wire: relay targets truncated")
		}
		m := &Relay{}
		for i := 0; i < n; i++ {
			off := 4 + 12*i
			m.Targets = append(m.Targets,
				action.ClientID(int32(binary.LittleEndian.Uint32(buf[off:]))))
			m.TargetSeqs = append(m.TargetSeqs, binary.LittleEndian.Uint64(buf[off+4:]))
		}
		inner, err := Decode(TypeBatch, buf[4+12*n:])
		if err != nil {
			return nil, err
		}
		m.Inner = inner.(*Batch)
		return m, nil
	case TypeWelcome:
		if len(buf) < 20 {
			return nil, fmt.Errorf("wire: welcome truncated")
		}
		m := &Welcome{
			You:   action.ClientID(int32(binary.LittleEndian.Uint32(buf))),
			Token: binary.LittleEndian.Uint64(buf[4:]),
			Boot:  binary.LittleEndian.Uint64(buf[12:]),
		}
		ws, _, err := decodeWrites(buf[20:])
		if err != nil {
			return nil, err
		}
		m.Init = ws
		return m, nil
	case TypeResume:
		if len(buf) < 16 {
			return nil, fmt.Errorf("wire: resume truncated")
		}
		return &Resume{
			Token:        binary.LittleEndian.Uint64(buf),
			LastBatchSeq: binary.LittleEndian.Uint64(buf[8:]),
		}, nil
	case TypeCatchUp:
		const hdr = 1 + 8 + 8 + 8 + 8 + 4 + 4
		if len(buf) < hdr {
			return nil, fmt.Errorf("wire: catch-up truncated")
		}
		m := &CatchUp{
			OK:            buf[0]&1 != 0,
			Snapshot:      buf[0]&2 != 0,
			Boot:          binary.LittleEndian.Uint64(buf[1:]),
			BootFloor:     binary.LittleEndian.Uint64(buf[9:]),
			InstalledUpTo: binary.LittleEndian.Uint64(buf[17:]),
			NextBatchSeq:  binary.LittleEndian.Uint64(buf[25:]),
			LastActSeq:    binary.LittleEndian.Uint32(buf[33:]),
		}
		n := int(binary.LittleEndian.Uint32(buf[37:]))
		if len(buf) < hdr+8*n {
			return nil, fmt.Errorf("wire: catch-up drop list truncated")
		}
		if n > 0 {
			m.DroppedActs = make([]action.ID, n)
			for i := range m.DroppedActs {
				off := hdr + 8*i
				m.DroppedActs[i] = action.ID{
					Client: action.ClientID(int32(binary.LittleEndian.Uint32(buf[off:]))),
					Seq:    binary.LittleEndian.Uint32(buf[off+4:]),
				}
			}
		}
		ws, _, err := decodeWrites(buf[hdr+8*n:])
		if err != nil {
			return nil, err
		}
		m.Writes = ws
		return m, nil
	case TypeQuarantine:
		if len(buf) < 17 {
			return nil, fmt.Errorf("wire: quarantine truncated")
		}
		return &Quarantine{
			Reason: buf[0],
			Seq:    binary.LittleEndian.Uint64(buf[1:]),
			Detail: binary.LittleEndian.Uint64(buf[9:]),
		}, nil
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
}
