package wire

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"seve/internal/action"
	"seve/internal/world"
)

func TestMessageTypesAndSizes(t *testing.T) {
	msgs := []Msg{
		&Submit{Env: action.Envelope{Origin: 1, Act: &testAct{id: action.ID{Client: 1, Seq: 1}}}},
		&Batch{},
		&Completion{},
		&Drop{},
		&Hello{},
		&Welcome{},
		&LockGrant{},
		&Resume{},
		&CatchUp{},
	}
	want := []MsgType{TypeSubmit, TypeBatch, TypeCompletion, TypeDrop, TypeHello, TypeWelcome, TypeLockGrant, TypeResume, TypeCatchUp}
	for i, m := range msgs {
		if m.Type() != want[i] {
			t.Errorf("msg %d Type = %d, want %d", i, m.Type(), want[i])
		}
		if got := len(Encode(m)); got != m.WireSize() {
			t.Errorf("%T: encoded %d bytes, WireSize %d", m, got, m.WireSize())
		}
	}
}

func TestLockGrantRoundTrip(t *testing.T) {
	m := &LockGrant{Seq: 77, ActID: action.ID{Client: 3, Seq: 9}}
	got, err := Decode(TypeLockGrant, Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*LockGrant)
	if g.Seq != 77 || g.ActID != m.ActID {
		t.Fatalf("round trip = %+v", g)
	}
	if _, err := Decode(TypeLockGrant, []byte{1, 2}); err == nil {
		t.Fatal("truncated lock grant accepted")
	}
}

// TestCompletionRoundTripProperty: random results survive the codec.
func TestCompletionRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		res := action.Result{OK: rng.Intn(2) == 0}
		for i := 0; i < rng.Intn(6); i++ {
			val := make(world.Value, rng.Intn(5))
			for j := range val {
				val[j] = rng.NormFloat64() * 1e6
			}
			res.Writes = append(res.Writes, world.Write{
				ID:  world.ObjectID(rng.Uint64()),
				Val: val,
			})
		}
		m := &Completion{Seq: rng.Uint64(), By: action.ClientID(rng.Int31()), Res: res}
		buf := Encode(m)
		if len(buf) != m.WireSize() {
			return false
		}
		got, err := Decode(TypeCompletion, buf)
		if err != nil {
			return false
		}
		g := got.(*Completion)
		return g.Seq == m.Seq && g.By == m.By && g.Res.Equal(m.Res)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchRoundTripProperty: random blind-write batches survive the
// codec, including push flags and installed markers.
func TestBatchRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Batch{Push: rng.Intn(2) == 0, InstalledUpTo: rng.Uint64()}
		for i := 0; i < rng.Intn(5); i++ {
			var writes []world.Write
			for j := 0; j < 1+rng.Intn(4); j++ {
				writes = append(writes, world.Write{
					ID:  world.ObjectID(rng.Uint64()),
					Val: world.Value{rng.Float64(), rng.Float64()},
				})
			}
			bw := action.NewBlindWrite(action.ID{Client: action.OriginServer, Seq: rng.Uint32()}, writes)
			m.Envs = append(m.Envs, action.Envelope{
				Seq:    rng.Uint64(),
				Origin: action.OriginServer,
				Act:    bw,
			})
		}
		buf := Encode(m)
		if len(buf) != m.WireSize() {
			return false
		}
		got, err := Decode(TypeBatch, buf)
		if err != nil {
			return false
		}
		g := got.(*Batch)
		if g.Push != m.Push || g.InstalledUpTo != m.InstalledUpTo || len(g.Envs) != len(m.Envs) {
			return false
		}
		for i := range g.Envs {
			if g.Envs[i].Seq != m.Envs[i].Seq {
				return false
			}
			gw := g.Envs[i].Act.(*action.BlindWrite).Writes()
			mw := m.Envs[i].Act.(*action.BlindWrite).Writes()
			if len(gw) != len(mw) {
				return false
			}
			for j := range gw {
				if gw[j].ID != mw[j].ID || !gw[j].Val.Equal(mw[j].Val) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// errWriter fails after n bytes, exercising WriteFrame's error paths.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errShort
	}
	take := len(p)
	if take > w.n {
		take = w.n
	}
	w.n -= take
	if take < len(p) {
		return take, errShort
	}
	return take, nil
}

type shortErr struct{}

func (shortErr) Error() string { return "short write" }

var errShort = shortErr{}

func TestWriteFrameErrors(t *testing.T) {
	m := &Drop{ActID: action.ID{Client: 1, Seq: 1}}
	if err := WriteFrame(&errWriter{n: 2}, m); err == nil {
		t.Fatal("header write error not surfaced")
	}
	if err := WriteFrame(&errWriter{n: 6}, m); err == nil {
		t.Fatal("payload write error not surfaced")
	}
}

func TestRelayRoundTrip(t *testing.T) {
	bw := action.NewBlindWrite(action.ID{Client: action.OriginServer, Seq: 5},
		[]world.Write{{ID: 7, Val: world.Value{1}}})
	m := &Relay{
		Targets:    []action.ClientID{3, 9, 12},
		TargetSeqs: []uint64{100, 200, 300},
		Inner: &Batch{
			Envs:          []action.Envelope{{Seq: 42, Origin: action.OriginServer, Act: bw}},
			Push:          true,
			InstalledUpTo: 41,
			ClientSeq:     100,
		},
	}
	buf := Encode(m)
	if len(buf) != m.WireSize() {
		t.Fatalf("encoded %d, WireSize %d", len(buf), m.WireSize())
	}
	got, err := Decode(TypeRelay, buf)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*Relay)
	if len(g.Targets) != 3 || g.Targets[1] != 9 || g.TargetSeqs[2] != 300 {
		t.Fatalf("targets = %v seqs = %v", g.Targets, g.TargetSeqs)
	}
	if !g.Inner.Push || g.Inner.InstalledUpTo != 41 || g.Inner.ClientSeq != 100 {
		t.Fatalf("inner = %+v", g.Inner)
	}
	if len(g.Inner.Envs) != 1 || g.Inner.Envs[0].Seq != 42 {
		t.Fatalf("inner envs = %+v", g.Inner.Envs)
	}
}

func TestRelayDecodeErrors(t *testing.T) {
	if _, err := Decode(TypeRelay, []byte{1}); err == nil {
		t.Fatal("short relay accepted")
	}
	// Claims 5 targets but provides none.
	hdr := binary.LittleEndian.AppendUint32(nil, 5)
	if _, err := Decode(TypeRelay, hdr); err == nil {
		t.Fatal("truncated relay targets accepted")
	}
}

func TestResumeRoundTrip(t *testing.T) {
	m := &Resume{Token: 0xdeadbeefcafe, LastBatchSeq: 99}
	buf := Encode(m)
	if len(buf) != m.WireSize() {
		t.Fatalf("encoded %d, WireSize %d", len(buf), m.WireSize())
	}
	got, err := Decode(TypeResume, buf)
	if err != nil {
		t.Fatal(err)
	}
	if g := got.(*Resume); *g != *m {
		t.Fatalf("round trip = %+v", g)
	}
	if _, err := Decode(TypeResume, buf[:15]); err == nil {
		t.Fatal("truncated resume accepted")
	}
}

func TestCatchUpRoundTrip(t *testing.T) {
	m := &CatchUp{
		OK:            true,
		Snapshot:      true,
		Boot:          3,
		BootFloor:     101,
		InstalledUpTo: 123,
		NextBatchSeq:  7,
		LastActSeq:    19,
		DroppedActs:   []action.ID{{Client: 3, Seq: 17}, {Client: 3, Seq: 18}},
		Writes: []world.Write{
			{ID: 1, Val: world.Value{2.5}},
			{ID: 9, Val: nil},
		},
	}
	buf := Encode(m)
	if len(buf) != m.WireSize() {
		t.Fatalf("encoded %d, WireSize %d", len(buf), m.WireSize())
	}
	got, err := Decode(TypeCatchUp, buf)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*CatchUp)
	if !g.OK || !g.Snapshot || g.Boot != 3 || g.BootFloor != 101 || g.InstalledUpTo != 123 || g.NextBatchSeq != 7 || g.LastActSeq != 19 {
		t.Fatalf("round trip header = %+v", g)
	}
	if len(g.DroppedActs) != 2 || g.DroppedActs[1] != (action.ID{Client: 3, Seq: 18}) {
		t.Fatalf("dropped acts = %v", g.DroppedActs)
	}
	if len(g.Writes) != 2 || g.Writes[0].ID != 1 || !g.Writes[0].Val.Equal(world.Value{2.5}) {
		t.Fatalf("writes = %v", g.Writes)
	}
	// A suffix-mode verdict with no payload also survives.
	s := &CatchUp{OK: true, InstalledUpTo: 4, LastActSeq: 2}
	got, err = Decode(TypeCatchUp, Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	g = got.(*CatchUp)
	if !g.OK || g.Snapshot || g.InstalledUpTo != 4 || len(g.DroppedActs) != 0 || len(g.Writes) != 0 {
		t.Fatalf("suffix round trip = %+v", g)
	}
}

func TestCatchUpDecodeHostile(t *testing.T) {
	// Claims 4 billion dropped actions with an 8-byte body: the length
	// check must reject it before allocating.
	hostile := append([]byte{1}, make([]byte, 20)...)
	hostile = binary.LittleEndian.AppendUint32(hostile[:21], 0xffffffff)
	if _, err := Decode(TypeCatchUp, hostile); err == nil {
		t.Fatal("forged drop count accepted")
	}
	if _, err := Decode(TypeCatchUp, []byte{1, 2, 3}); err == nil {
		t.Fatal("truncated catch-up accepted")
	}
}

func TestWelcomeTokenSurvives(t *testing.T) {
	m := &Welcome{You: 4, Token: 0xabc123, Init: []world.Write{{ID: 2, Val: world.Value{7}}}}
	got, err := Decode(TypeWelcome, Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	g := got.(*Welcome)
	if g.You != 4 || g.Token != 0xabc123 || len(g.Init) != 1 {
		t.Fatalf("round trip = %+v", g)
	}
}

func TestBatchClientSeqSurvives(t *testing.T) {
	m := &Batch{ClientSeq: 77, InstalledUpTo: 3, CoversFrom: 70}
	got, err := Decode(TypeBatch, Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if b := got.(*Batch); b.ClientSeq != 77 || b.CoversFrom != 70 {
		t.Fatalf("ClientSeq = %d, CoversFrom = %d", b.ClientSeq, b.CoversFrom)
	}
}
