package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVecOps(t *testing.T) {
	v := Vec{3, 4}
	if v.Len() != 5 {
		t.Fatalf("Len = %v, want 5", v.Len())
	}
	if v.Len2() != 25 {
		t.Fatalf("Len2 = %v, want 25", v.Len2())
	}
	if got := v.Add(Vec{1, -1}); got != (Vec{4, 3}) {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Sub(Vec{1, 1}); got != (Vec{2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec{6, 8}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Dot(Vec{2, 1}); got != 10 {
		t.Fatalf("Dot = %v", got)
	}
	if got := v.Normalize(); !approx(got.Len(), 1) {
		t.Fatalf("Normalize length = %v", got.Len())
	}
	if got := (Vec{}).Normalize(); got != (Vec{}) {
		t.Fatalf("Normalize zero = %v", got)
	}
}

func TestRotate90(t *testing.T) {
	v := Vec{1, 0}
	for i, want := range []Vec{{0, 1}, {-1, 0}, {0, -1}, {1, 0}} {
		v = v.Rotate90()
		if !approx(v.X, want.X) || !approx(v.Y, want.Y) {
			t.Fatalf("rotation %d = %v, want %v", i+1, v, want)
		}
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{A: Vec{0, 0}, B: Vec{10, 0}}
	cases := []struct {
		p, want Vec
	}{
		{Vec{5, 3}, Vec{5, 0}},    // interior projection
		{Vec{-4, 2}, Vec{0, 0}},   // clamped to A
		{Vec{15, -2}, Vec{10, 0}}, // clamped to B
	}
	for _, c := range cases {
		got := s.ClosestPoint(c.p)
		if !approx(got.X, c.want.X) || !approx(got.Y, c.want.Y) {
			t.Fatalf("ClosestPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate zero-length segment.
	d := Segment{A: Vec{2, 2}, B: Vec{2, 2}}
	if got := d.ClosestPoint(Vec{9, 9}); got != (Vec{2, 2}) {
		t.Fatalf("degenerate ClosestPoint = %v", got)
	}
}

func TestSegmentCircleIntersection(t *testing.T) {
	s := Segment{A: Vec{0, 0}, B: Vec{10, 0}}
	if !s.IntersectsCircle(Vec{5, 2}, 2) {
		t.Fatal("tangent circle should intersect")
	}
	if s.IntersectsCircle(Vec{5, 3}, 2) {
		t.Fatal("distant circle should not intersect")
	}
	if !s.IntersectsCircle(Vec{-1, 0}, 1.5) {
		t.Fatal("circle near endpoint should intersect")
	}
}

func TestCircle(t *testing.T) {
	c := Circle{Center: Vec{0, 0}, R: 5}
	if !c.Contains(Vec{3, 4}) {
		t.Fatal("boundary point should be contained")
	}
	if c.Contains(Vec{3.1, 4}) {
		t.Fatal("outside point contained")
	}
	if !c.Intersects(Circle{Center: Vec{10, 0}, R: 5}) {
		t.Fatal("touching circles should intersect")
	}
	if c.Intersects(Circle{Center: Vec{10.01, 0}, R: 5}) {
		t.Fatal("separated circles intersect")
	}
	if got := c.Expand(-10).R; got != 0 {
		t.Fatalf("Expand clamped R = %v, want 0", got)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(100, 50)
	if !r.Contains(Vec{0, 0}) || !r.Contains(Vec{100, 50}) {
		t.Fatal("corners should be contained")
	}
	if r.Contains(Vec{100.1, 0}) {
		t.Fatal("outside point contained")
	}
	if got := r.Clamp(Vec{-5, 60}); got != (Vec{0, 50}) {
		t.Fatalf("Clamp = %v, want (0,50)", got)
	}
	if r.Width() != 100 || r.Height() != 50 {
		t.Fatalf("dims = %v x %v", r.Width(), r.Height())
	}
}

func TestInfluenceReachableEquationOne(t *testing.T) {
	// With s=0 the bound degenerates to rC + rA: pure overlap of the two
	// influence spheres.
	if !InfluenceReachable(Vec{0, 0}, Vec{10, 0}, 4, 6, 0, 0.5, 476) {
		t.Fatal("touching spheres with s=0 should be reachable")
	}
	if InfluenceReachable(Vec{0, 0}, Vec{10.1, 0}, 4, 6, 0, 0.5, 476) {
		t.Fatal("separated spheres with s=0 reachable")
	}
	// With motion the bound widens by 2s(1+w)RTT.
	s, omega, rtt := 0.01, 0.5, 476.0
	widen := 2 * s * (1 + omega) * rtt // = 14.28
	d := 10 + widen
	if !InfluenceReachable(Vec{0, 0}, Vec{d - 1e-9, 0}, 4, 6, s, omega, rtt) {
		t.Fatal("point just inside widened bound unreachable")
	}
	if InfluenceReachable(Vec{0, 0}, Vec{d + 1e-6, 0}, 4, 6, s, omega, rtt) {
		t.Fatal("point just outside widened bound reachable")
	}
}

func TestMovingInfluenceReachable(t *testing.T) {
	// An arrow flying away from the client should not be reachable even
	// though its origin is close.
	pM, vM := Vec{0, 0}, Vec{1, 0} // 1 unit per ms, flying +x
	pC := Vec{-50, 0}
	if MovingInfluenceReachable(pM, vM, pC, 5, 0.001, 0.5, 476, 100) {
		t.Fatal("receding arrow flagged reachable")
	}
	// The same arrow flying toward the client is reachable.
	if !MovingInfluenceReachable(pM, Vec{-1, 0}, pC, 5, 0.001, 0.5, 476, 49) {
		t.Fatal("approaching arrow not reachable")
	}
}

func TestInfluenceSymmetryProperty(t *testing.T) {
	// Equation (1) is symmetric in (pA,rA) <-> (pC,rC).
	f := func(ax, ay, cx, cy, ra, rc float64) bool {
		pA := Vec{math.Mod(ax, 1000), math.Mod(ay, 1000)}
		pC := Vec{math.Mod(cx, 1000), math.Mod(cy, 1000)}
		ra = math.Abs(math.Mod(ra, 50))
		rc = math.Abs(math.Mod(rc, 50))
		a := InfluenceReachable(pA, pC, ra, rc, 0.01, 0.5, 476)
		b := InfluenceReachable(pC, pA, rc, ra, 0.01, 0.5, 476)
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClosestPointIsOnSegmentProperty(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		trim := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e6)
		}
		s := Segment{A: Vec{trim(ax), trim(ay)}, B: Vec{trim(bx), trim(by)}}
		p := Vec{trim(px), trim(py)}
		cp := s.ClosestPoint(p)
		// The closest point must not be farther than either endpoint.
		d := cp.Dist(p)
		return d <= s.A.Dist(p)+1e-6 && d <= s.B.Dist(p)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
