// Package geom provides the 2-D geometry used by the Manhattan People
// workload and by the influence-sphere bounds of Sections III-D and IV-B.
//
// The paper treats the virtual world as a high-dimensional database whose
// spatial attributes change at a bounded rate; the two spatial dimensions
// here are the x, y of avatars and walls, and the same Vec type doubles as
// the velocity vectors of Section IV-B (area culling).
package geom

import "math"

// Vec is a 2-D point or vector.
type Vec struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Len returns the Euclidean norm of v.
func (v Vec) Len() float64 { return math.Hypot(v.X, v.Y) }

// Len2 returns the squared Euclidean norm of v, avoiding the square root
// in the hot distance comparisons of Equation (1).
func (v Vec) Len2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the distance between points v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// Dist2 returns the squared distance between points v and w.
func (v Vec) Dist2(w Vec) float64 { return v.Sub(w).Len2() }

// Normalize returns the unit vector in the direction of v, or the zero
// vector if v is zero.
func (v Vec) Normalize() Vec {
	l := v.Len()
	if l == 0 {
		return Vec{}
	}
	return v.Scale(1 / l)
}

// Rotate90 returns v rotated 90 degrees counterclockwise: the direction
// change a Manhattan People avatar makes when it bumps into a wall.
func (v Vec) Rotate90() Vec { return Vec{-v.Y, v.X} }

// Segment is a wall: a line segment between two points (walls in the
// Manhattan People world have length 10, Table I).
type Segment struct {
	A, B Vec
}

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment's midpoint.
func (s Segment) Midpoint() Vec { return s.A.Add(s.B).Scale(0.5) }

// ClosestPoint returns the point on the segment nearest to p.
func (s Segment) ClosestPoint(p Vec) Vec {
	d := s.B.Sub(s.A)
	l2 := d.Len2()
	if l2 == 0 {
		return s.A
	}
	t := p.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.A.Add(d.Scale(t))
}

// DistTo returns the distance from p to the segment.
func (s Segment) DistTo(p Vec) float64 {
	return s.ClosestPoint(p).Dist(p)
}

// IntersectsCircle reports whether the segment comes within r of center —
// the wall-collision test that Manhattan People move evaluation performs
// against every visible wall.
func (s Segment) IntersectsCircle(center Vec, r float64) bool {
	return s.DistTo(center) <= r
}

// Circle is a ball of influence: an action's maximum area of effect
// (center p̄A, radius rA in the notation of Section III-D).
type Circle struct {
	Center Vec
	R      float64
}

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Vec) bool {
	return c.Center.Dist2(p) <= c.R*c.R
}

// Intersects reports whether two circles overlap or touch.
func (c Circle) Intersects(o Circle) bool {
	rr := c.R + o.R
	return c.Center.Dist2(o.Center) <= rr*rr
}

// Expand returns the circle grown by dr (dr may be negative; the radius is
// clamped at zero).
func (c Circle) Expand(dr float64) Circle {
	r := c.R + dr
	if r < 0 {
		r = 0
	}
	return Circle{Center: c.Center, R: r}
}

// Rect is an axis-aligned rectangle, used for the world bounds (1000×1000
// in Table I, 250×250 in the Figure 8 density experiment).
type Rect struct {
	Min, Max Vec
}

// NewRect returns the rectangle [0,w] × [0,h].
func NewRect(w, h float64) Rect {
	return Rect{Min: Vec{0, 0}, Max: Vec{w, h}}
}

// Contains reports whether p lies inside or on the rectangle.
func (r Rect) Contains(p Vec) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Vec) Vec {
	if p.X < r.Min.X {
		p.X = r.Min.X
	} else if p.X > r.Max.X {
		p.X = r.Max.X
	}
	if p.Y < r.Min.Y {
		p.Y = r.Min.Y
	} else if p.Y > r.Max.Y {
		p.Y = r.Max.Y
	}
	return p
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// InfluenceReachable implements Equation (1) of the First Bound Model: an
// action at pA with influence radius rA can affect a future action of a
// client at pC with action radius rC within (1+ω)·RTT if and only if
//
//	‖p̄A − p̄C‖ ≤ 2s·(1+ω)·RTT + rC + rA
//
// where s is the maximum object speed (units per ms here, with rtt in ms).
func InfluenceReachable(pA, pC Vec, rA, rC, s, omega, rttMs float64) bool {
	bound := 2*s*(1+omega)*rttMs + rC + rA
	return pA.Dist2(pC) <= bound*bound
}

// MovingInfluenceReachable implements the area-culling refinement of
// Section IV-B: the action's influence is a moving point p̄M + v̄M·(tM−tC)
// rather than a static sphere, so directed actions (arrows, projectiles)
// conflict with far fewer clients:
//
//	‖p̄M + v̄M×(tM−tC) − p̄C‖ ≤ 2s·(1+ω)·RTT + rC
func MovingInfluenceReachable(pM, vM, pC Vec, rC, s, omega, rttMs, dtMs float64) bool {
	proj := pM.Add(vM.Scale(dtMs))
	bound := 2*s*(1+omega)*rttMs + rC
	return proj.Dist2(pC) <= bound*bound
}
