package transport

import (
	"bytes"
	"fmt"
	"testing"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/manhattan"
	"seve/internal/shard"
	"seve/internal/wire"
	"seve/internal/world"
)

func supConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeFirstBound
	cfg.Strict = true
	cfg.ResumeWindow = 8
	cfg.RecordHistory = true
	// Widen Equation (1) until it covers the whole shared test world
	// (the wire decoder is process-global, so this harness must reuse
	// testWorld()): every avatar is push-eligible for every client, and
	// the laggard's queue sees the full fan-out.
	cfg.MaxSpeed = 1.0
	return cfg
}

// supHarness drives the real dispatch path — engine, dispatch,
// SendQueue — without TCP: frames are popped from the queues and fed to
// real core.Client engines, so every byte crosses the same encode/decode
// boundary a socket would, deterministically.
type supHarness struct {
	t       *testing.T
	w       *manhattan.World
	cfg     core.Config
	srv     *Server
	ids     []action.ClientID
	queues  map[action.ClientID]*SendQueue
	engines map[action.ClientID]*core.Client
	streams map[action.ClientID]*bytes.Buffer
	stalled map[action.ClientID]bool
	commits map[action.ClientID][]core.Commit
	sent    map[action.ClientID]int
	now     float64
}

func newSupHarness(t *testing.T, cfg core.Config, nClients int, caps map[action.ClientID]int) *supHarness {
	w := testWorld()
	h := &supHarness{
		t:       t,
		w:       w,
		cfg:     cfg,
		srv:     NewServer(ServerConfig{Core: cfg, Init: w.InitialState(0)}),
		queues:  make(map[action.ClientID]*SendQueue),
		engines: make(map[action.ClientID]*core.Client),
		streams: make(map[action.ClientID]*bytes.Buffer),
		stalled: make(map[action.ClientID]bool),
		commits: make(map[action.ClientID][]core.Commit),
		sent:    make(map[action.ClientID]int),
	}
	init := h.srv.cfg.Init
	for i := 1; i <= nClients; i++ {
		id := action.ClientID(i)
		h.ids = append(h.ids, id)
		cap := sendQueueCap
		if c, ok := caps[id]; ok {
			cap = c
		}
		q := NewSendQueue(cap, h.srv.superseding, &h.srv.ctrs)
		h.srv.mu.Lock()
		h.srv.engine.RegisterClient(id, 0)
		h.srv.writers[id] = q
		h.srv.mu.Unlock()
		h.queues[id] = q

		st := world.NewState()
		for _, wr := range stateWrites(init) {
			st.Set(wr.ID, wr.Val)
		}
		// GC off keeps the per-version oracle exact: pruning re-stamps a
		// surviving stale version at the prune position, which the
		// Incomplete World Model allows but the strict as-of check does
		// not. Client-local, so it changes no wire traffic.
		clientCfg := cfg
		clientCfg.DisableGC = true
		h.engines[id] = core.NewClient(id, clientCfg, st)
		h.streams[id] = &bytes.Buffer{}
	}
	return h
}

// serverHandle pushes one client message through the engine and the full
// dispatch path (including any snapshot fallback it triggers).
func (h *supHarness) serverHandle(id action.ClientID, m wire.Msg) {
	h.srv.mu.Lock()
	out := h.srv.engine.HandleMsg(id, m, h.now)
	h.srv.mu.Unlock()
	h.srv.dispatch(out)
}

func (h *supHarness) tick() {
	h.srv.mu.Lock()
	out := h.srv.engine.Tick(h.now)
	h.srv.mu.Unlock()
	h.srv.dispatch(out)
}

// submit mints and submits one move for id, whatever its stall state —
// a stalled TCP client can still upload while its downlink is jammed.
func (h *supHarness) submit(id action.ClientID) {
	cl := h.engines[id]
	mv, err := h.w.NewMove(cl.NextActionID(), manhattan.AvatarID(int(id)), cl.Optimistic())
	if err != nil {
		h.t.Fatalf("client %d: %v", id, err)
	}
	msg, _ := cl.Submit(mv)
	h.sent[id]++
	h.serverHandle(id, msg)
}

// pump drains id's delivery queue, recording the raw bytes and applying
// every frame to the client engine; completions flow straight back into
// the server. Returns the number of frames applied.
func (h *supHarness) pump(id action.ClientID) int {
	if h.stalled[id] {
		return 0
	}
	q := h.queues[id]
	applied := 0
	for {
		frames := q.PopAll(nil, 1<<30)
		if len(frames) == 0 {
			return applied
		}
		for _, f := range frames {
			h.streams[id].Write(f.Bytes())
			m, err := wire.ReadFrame(bytes.NewReader(f.Bytes()))
			f.Release()
			if err != nil {
				h.t.Fatalf("client %d: decode popped frame: %v", id, err)
			}
			out := h.engines[id].HandleMsg(m)
			if len(out.Violations) > 0 {
				h.t.Fatalf("client %d: %s", id, out.Violations[0])
			}
			h.commits[id] = append(h.commits[id], out.Commits...)
			for _, sm := range out.ToServer {
				h.serverHandle(id, sm)
			}
			applied++
		}
	}
}

func (h *supHarness) pumpAll() {
	for _, id := range h.ids {
		h.pump(id)
	}
}

// settle ticks and pumps until no client applies anything new.
func (h *supHarness) settle() {
	for round := 0; round < 50; round++ {
		h.now += h.cfg.PushIntervalMs()
		h.tick()
		applied := 0
		for _, id := range h.ids {
			applied += h.pump(id)
		}
		if applied == 0 {
			return
		}
	}
	h.t.Fatal("harness did not quiesce within 50 settle rounds")
}

// runKeepUp runs the scripted keep-up trace: every round each client
// submits one move, the push tick fires, and everyone drains.
func runKeepUp(t *testing.T, cfg core.Config) *supHarness {
	h := newSupHarness(t, cfg, 3, nil)
	for round := 0; round < 12; round++ {
		h.now += h.cfg.PushIntervalMs()
		for _, id := range h.ids {
			h.submit(id)
			h.pumpAll()
		}
		h.tick()
		h.pumpAll()
	}
	h.settle()
	return h
}

// TestSupersedingEquivalence is the PR's correctness headline: clients
// that keep up receive byte-identical streams whether superseding is
// armed or disabled, and none of the supersession machinery fires.
func TestSupersedingEquivalence(t *testing.T) {
	off := supConfig()
	off.DisableSuperseding = true
	control := runKeepUp(t, off)
	if control.srv.superseding {
		t.Fatal("DisableSuperseding did not disarm the server")
	}

	on := supConfig()
	subject := runKeepUp(t, on)
	if !subject.srv.superseding {
		t.Fatal("superseding not armed despite ResumeWindow and no ablation knob")
	}

	for _, id := range subject.ids {
		got, want := subject.streams[id].Bytes(), control.streams[id].Bytes()
		if !bytes.Equal(got, want) {
			t.Fatalf("client %d: superseding stream (%d bytes) diverges from control (%d bytes)",
				id, len(got), len(want))
		}
		if len(got) == 0 {
			t.Fatalf("client %d: empty stream — the trace exercised nothing", id)
		}
	}
	for name, h := range map[string]*supHarness{"control": control, "subject": subject} {
		ss := h.srv.Metrics()
		if ss.FramesSuperseded != 0 || ss.FramesCoalesced != 0 || ss.SnapshotFallbacks != 0 || ss.WriteQueueDrops != 0 {
			t.Fatalf("%s: supersession fired on keep-up clients: %+v", name, ss)
		}
	}
}

// runLaggy runs the adversarial trace: client 3 gets a 4-frame queue and
// stalls (downlink jammed, uplink alive) across a burst of traffic, then
// comes back and drains.
func runLaggy(t *testing.T, cfg core.Config) *supHarness {
	const laggard = action.ClientID(3)
	h := newSupHarness(t, cfg, 3, map[action.ClientID]int{laggard: 4})
	for round := 0; round < 24; round++ {
		h.now += h.cfg.PushIntervalMs()
		if round == 3 {
			h.stalled[laggard] = true
		}
		if round == 18 {
			h.stalled[laggard] = false
		}
		for _, id := range h.ids {
			if id == laggard && round%3 != 0 {
				continue // the laggard submits sparsely
			}
			h.submit(id)
			h.pumpAll()
		}
		h.tick()
		h.pumpAll()
	}
	h.settle()
	return h
}

// verifySupersession runs the Theorem 1 serial-replay oracle over a
// drained laggy harness: ζS and every client's ζCS must match the
// omniscient serial replay, every submission must commit exactly once,
// and the supersession machinery must actually have fired.
func verifySupersession(t *testing.T, h *supHarness) {
	hist := h.srv.engine.History()
	for i, env := range hist {
		if env.Seq != uint64(i+1) {
			t.Fatalf("history gap at %d: seq %d", i, env.Seq)
		}
	}
	if got := h.srv.engine.Installed(); got != uint64(len(hist)) {
		t.Fatalf("installed %d of %d actions", got, len(hist))
	}
	if got := h.srv.engine.QueueLen(); got != 0 {
		t.Fatalf("server queue still holds %d actions", got)
	}

	// ζS equals the omniscient serial replay.
	init := h.w.InitialState(0)
	st := init.Clone()
	oracleRes := make(map[uint64]action.Result, len(hist))
	for _, env := range hist {
		res := action.Eval(env.Act, world.StateView{S: st})
		for _, wr := range res.Writes {
			st.Set(wr.ID, wr.Val)
		}
		oracleRes[env.Seq] = res
	}
	if !h.srv.engine.Authoritative().Equal(st) {
		t.Fatal("authoritative state ζS diverged from serial oracle")
	}

	for _, cid := range h.ids {
		cl := h.engines[cid]
		if got := cl.QueueLen(); got != 0 {
			t.Fatalf("client %d still has %d in-flight actions", cid, got)
		}
		if len(h.commits[cid]) != h.sent[cid] {
			t.Fatalf("client %d committed %d of %d submissions", cid, len(h.commits[cid]), h.sent[cid])
		}
		seen := make(map[uint64]bool, len(h.commits[cid]))
		for _, c := range h.commits[cid] {
			if seen[c.Seq] {
				t.Fatalf("client %d committed serial %d twice", cid, c.Seq)
			}
			seen[c.Seq] = true
			want, ok := oracleRes[c.Seq]
			if !ok {
				t.Fatalf("client %d commit at seq %d not in history", cid, c.Seq)
			}
			if !c.Res.Equal(want) {
				t.Fatalf("client %d stable result at seq %d diverged from oracle", cid, c.Seq)
			}
		}
		// ζCS: every held version serial-replay consistent — bounded
		// staleness means the laggard converged to the same stable world,
		// just possibly through a snapshot rather than every batch.
		cs := cl.Stable()
		for _, oid := range cs.IDs() {
			val, seq, ok := cs.Latest(oid)
			if !ok {
				continue
			}
			asOf := init.Clone()
			for _, env := range hist {
				if env.Seq > seq {
					break
				}
				res := action.Eval(env.Act, world.StateView{S: asOf})
				for _, wr := range res.Writes {
					asOf.Set(wr.ID, wr.Val)
				}
			}
			want, _ := asOf.Get(oid)
			if !val.Equal(want) {
				t.Fatalf("client %d ζCS(%d)=%v at seq %d diverges from serial replay %v",
					cid, oid, val, seq, want)
			}
		}
	}

	// The adversarial trace must actually have exercised the ladder.
	ss := h.srv.Metrics()
	if ss.FramesSuperseded == 0 {
		t.Errorf("no frames superseded despite the stalled 4-frame queue: %+v", ss)
	}
	if ss.SnapshotFallbacks == 0 {
		t.Errorf("no snapshot fallbacks despite unsupersedable overflow: %+v", ss)
	}
	if ss.MaxStaleObjects == 0 {
		t.Errorf("staleness gauge never moved during the stall: %+v", ss)
	}
	if ss.WriteQueueDrops != 0 {
		t.Errorf("superseding queue fell back to blind drops: %+v", ss)
	}
	// The laggard's engine observed the supersession: batch numbering
	// jumped over the replaced frames.
	if st := h.engines[3].Metrics(); st.Superseded == 0 {
		t.Errorf("laggard applied every batch seq individually despite supersession: %+v", st)
	}
	// Everyone drained: nobody is left stale.
	for _, cid := range h.ids {
		if n := h.queues[cid].StaleObjects(); n != 0 {
			t.Errorf("client %d still stale over %d objects after drain", cid, n)
		}
	}
}

// TestSupersedingLaggardConverges: the laggy half of the headline — a
// stalled client whose queue superseded and snapshotted still converges
// to the oracle's ζCS, with the machinery provably engaged.
func TestSupersedingLaggardConverges(t *testing.T) {
	verifySupersession(t, runLaggy(t, supConfig()))
}

// TestSupersedingLaggardShardedReplay reruns the laggy trace on the
// sharded router and replays its effective log — mid-session
// SnapshotCatchUp barriers included — through a fresh single-lane
// engine, which must reproduce the identical history and ζS.
func TestSupersedingLaggardShardedReplay(t *testing.T) {
	cfg := supConfig()
	cfg.Shards = 4
	h := runLaggy(t, cfg)

	r, ok := h.srv.engine.(*shard.Router)
	if !ok {
		t.Fatalf("engine is %T, want *shard.Router", h.srv.engine)
	}
	log := r.EffectiveLog()
	snaps := 0
	for _, le := range log {
		if le.Snap {
			snaps++
		}
	}
	if snaps == 0 {
		t.Fatal("no SnapshotCatchUp barriers recorded in the effective log")
	}

	single := cfg
	single.Shards = 0
	eng := core.NewServer(single, h.w.InitialState(0))
	shard.Replay(eng, log)

	if got, want := eng.Installed(), h.srv.engine.Installed(); got != want {
		t.Fatalf("replay installed %d, router installed %d", got, want)
	}
	if !eng.Authoritative().Equal(h.srv.engine.Authoritative()) {
		t.Fatal("single-lane replay of the effective log diverged from the router's ζS")
	}
	rh, sh := h.srv.engine.History(), eng.History()
	if len(rh) != len(sh) {
		t.Fatalf("history length: router %d, replay %d", len(rh), len(sh))
	}
	for i := range rh {
		if rh[i].Seq != sh[i].Seq || rh[i].Origin != sh[i].Origin {
			t.Fatalf("history diverges at %d: router %v/%d, replay %v/%d",
				i, rh[i].Origin, rh[i].Seq, sh[i].Origin, sh[i].Seq)
		}
	}
}

var _ = fmt.Sprintf // reserved for debugging
