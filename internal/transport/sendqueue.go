package transport

import (
	"sync"
	"sync/atomic"

	"seve/internal/core"
	"seve/internal/wire"
	"seve/internal/world"
)

// SendQueue is the per-client delivery queue behind the server's writer
// pump: an updatable queue in the UQP sense (arXiv:1111.1628) — when a
// newer update is enqueued behind stale undelivered ones and the queue
// is full, the stale content is replaced in place instead of appended
// or dropped. DESIGN.md §13 documents the supersession rules and their
// soundness.
//
// While the queue has room it is a plain FIFO: a client that keeps up
// receives the byte-identical stream a non-superseding server would
// send (TestSupersedingEquivalence pins this). Only at capacity does
// the escalation ladder engage, per the frame's core.DeliveryClass:
//
//  1. A DeliveryBatch frame contiguous with a DeliveryBatch tail merges
//     into it in place (wire.CoalesceFrames) — same bytes the client
//     would have applied, one frame.
//  2. Otherwise the frame is released and the queue requests a
//     blind-write snapshot catch-up (Enqueue returns NeedSnapshot; the
//     dispatcher calls core.Superseder.SnapshotCatchUp). Until the
//     snapshot arrives, further supersedable frames are discarded — the
//     snapshot covers their content by construction.
//  3. The snapshot's own DeliverySnapshot frame releases and replaces
//     every supersedable frame still queued — the literal UQP
//     replace-in-place.
//
// DeliveryOrdered frames are never superseded, merged, or (in
// superseding mode) dropped: they carry session control flow and may
// exceed the capacity bound.
//
// Without superseding (ResumeWindow 0, DisableSuperseding, or an engine
// that cannot snapshot) a full queue drops the incoming frame, the
// pre-§13 behavior.
//
// Enqueue consumes the caller's frame reference in every outcome;
// popped frames transfer their reference to the popper. All methods are
// safe for concurrent use; the intended shape is one enqueuer (the
// engine goroutine's dispatch) and one popper (the connection's writer
// pump).
type SendQueue struct {
	mu    sync.Mutex
	items []queuedFrame
	limit int
	// sup enables the superseding ladder; false means bounded FIFO with
	// drops.
	sup      bool
	closed   bool
	wantSnap bool
	// poisoned marks the queue for disconnect-after-drain (integrity
	// quarantine, DESIGN.md §16): frames enqueued before the poison —
	// the Quarantine verdict among them — still deliver, later enqueues
	// are refused, and the writer pump hangs the connection up once the
	// queue runs dry.
	poisoned bool
	// stale accumulates the covered-object footprints of frames enqueued
	// while the client was already behind (≥1 undelivered frame). It
	// resets when the queue drains — the client caught up.
	stale  map[world.ObjectID]struct{}
	notify chan struct{}
	ctrs   *DeliveryCounters
}

type queuedFrame struct {
	f *wire.Frame
	d core.Delivery
}

// Verdict is Enqueue's outcome.
type Verdict int

const (
	// Enqueued: appended (or, for a snapshot, replaced the queue content).
	Enqueued Verdict = iota
	// Coalesced: merged into the undelivered tail frame in place.
	Coalesced
	// Dropped: released at capacity (non-superseding mode only).
	Dropped
	// NeedSnapshot: released at capacity; the caller owes the client a
	// core.Superseder.SnapshotCatchUp to rebuild what the queue shed.
	NeedSnapshot
	// Closed: released because the queue is closed.
	Closed
)

// DeliveryCounters aggregates supersession activity across every queue
// sharing them. Shared and atomic so the totals survive disconnects and
// are readable without stopping the pumps.
type DeliveryCounters struct {
	// Superseded counts frames released undelivered because newer
	// content replaced them (snapshot replacement, coalesce inputs do
	// not count — their bytes still arrive — and post-request discards).
	Superseded atomic.Int64
	// Coalesced counts in-place merges of contiguous batch frames.
	Coalesced atomic.Int64
	// Drops counts frames discarded at capacity without replacement
	// (non-superseding mode) — the pre-§13 writeQueueDrops.
	Drops atomic.Int64
	// MaxStale gauges the largest stale-footprint size any queue
	// accumulated (see SendQueue.StaleObjects).
	MaxStale atomic.Int64
}

func (c *DeliveryCounters) noteStale(n int) {
	for {
		cur := c.MaxStale.Load()
		if int64(n) <= cur || c.MaxStale.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// maxCoalescedFrame caps the size an in-queue merge may produce, so
// replacement cannot grow a frame past what the buffer pool will
// recycle (wire's pooling cap).
const maxCoalescedFrame = 1 << 20

// NewSendQueue returns a queue bounded at limit frames, superseding
// when sup is set, charging activity to ctrs (which must be non-nil and
// may be shared across queues).
func NewSendQueue(limit int, sup bool, ctrs *DeliveryCounters) *SendQueue {
	return &SendQueue{
		limit:  limit,
		sup:    sup,
		stale:  make(map[world.ObjectID]struct{}),
		notify: make(chan struct{}, 1),
		ctrs:   ctrs,
	}
}

// Notify returns the channel the queue signals (non-blocking, buffered)
// whenever frames become available or the queue closes.
func (q *SendQueue) Notify() <-chan struct{} { return q.notify }

// Len reports the number of queued frames.
func (q *SendQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// StaleObjects reports the size of the current stale footprint: how
// many distinct objects have updates sitting undelivered behind a
// backlog. Zero for a client that is keeping up.
func (q *SendQueue) StaleObjects() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.stale)
}

// IsClosed reports whether Close ran.
func (q *SendQueue) IsClosed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// wake signals the notify channel without blocking.
func (q *SendQueue) wake() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// addStale charges d's footprint to the stale set. Caller holds q.mu;
// behind reports whether the client already had undelivered frames when
// this one arrived (a keep-up client is never stale).
func (q *SendQueue) addStale(d core.Delivery, behind bool) {
	if !behind || len(d.Footprint) == 0 {
		return
	}
	for _, id := range d.Footprint {
		q.stale[id] = struct{}{}
	}
	q.ctrs.noteStale(len(q.stale))
}

// Enqueue hands the queue one encoded frame and its supersession
// metadata, consuming the caller's reference whatever the verdict.
func (q *SendQueue) Enqueue(f *wire.Frame, d core.Delivery) Verdict {
	q.mu.Lock()
	if q.closed || q.poisoned {
		q.mu.Unlock()
		//seve:vet-ignore deliveryclass a poisoned queue belongs to a quarantined client: nothing after the verdict may deliver, ordered or not, so dropping here is the contract
		f.Release()
		return Closed
	}
	behind := len(q.items) > 0

	if q.sup && d.Class == core.DeliverySnapshot {
		// Replace-in-place: everything supersedable below the snapshot is
		// stale by construction (the engine cleared its sent() bits and
		// the CatchUp replays drop notices), so release it all and let
		// the snapshot stand in.
		kept := q.items[:0]
		replaced := 0
		for _, it := range q.items {
			if it.d.Class == core.DeliveryOrdered {
				kept = append(kept, it)
				continue
			}
			it.f.Release()
			replaced++
		}
		for i := len(kept); i < len(q.items); i++ {
			q.items[i] = queuedFrame{}
		}
		q.items = append(kept, queuedFrame{f: f, d: d})
		q.wantSnap = false
		q.addStale(d, behind)
		q.mu.Unlock()
		if replaced > 0 {
			q.ctrs.Superseded.Add(int64(replaced))
		}
		q.wake()
		return Enqueued
	}

	if len(q.items) < q.limit || (q.sup && d.Class == core.DeliveryOrdered) {
		// Room (or an unshedable control frame): plain FIFO append — the
		// keep-up path, byte-identical to a non-superseding server.
		q.items = append(q.items, queuedFrame{f: f, d: d})
		q.addStale(d, behind)
		q.mu.Unlock()
		q.wake()
		return Enqueued
	}

	// At capacity.
	if !q.sup {
		q.mu.Unlock()
		// Non-superseding queues keep the pre-§13 drop-on-full contract:
		// the caller sees Dropped and owns recovery, and retaining
		// Ordered frames here would grow the queue without bound.
		//seve:vet-ignore deliveryclass non-superseding drop-on-full is the documented pre-supersession contract; the caller observes Dropped
		f.Release()
		q.ctrs.Drops.Add(1)
		return Dropped
	}
	if q.wantSnap {
		// A snapshot covering everything shed here is already owed;
		// discarding is sound for the same reason the replacement is.
		q.mu.Unlock()
		f.Release()
		q.ctrs.Superseded.Add(1)
		return NeedSnapshot
	}
	if d.Class == core.DeliveryBatch && len(q.items) > 0 {
		tail := &q.items[len(q.items)-1]
		if tail.d.Class == core.DeliveryBatch && tail.f.Len()+f.Len() <= maxCoalescedFrame {
			if merged, ok := wire.CoalesceFrames(tail.f, f); ok {
				// Ownership transfer: the merged frame replaces the tail
				// slot; both inputs release their queue/caller references.
				tail.f.Release()
				f.Release()
				tail.f = merged
				tail.d.Epoch = d.Epoch
				tail.d.Footprint = unionFootprint(tail.d.Footprint, d.Footprint)
				q.addStale(d, behind)
				q.mu.Unlock()
				q.ctrs.Coalesced.Add(1)
				q.wake()
				return Coalesced
			}
		}
	}
	// Cannot supersede safely in place: shed the frame and escalate to
	// the Algorithm 6 snapshot rebuild.
	q.wantSnap = true
	q.mu.Unlock()
	f.Release()
	q.ctrs.Superseded.Add(1)
	return NeedSnapshot
}

// unionFootprint merges two sorted deduplicated footprints.
func unionFootprint(a, b []world.ObjectID) []world.ObjectID {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]world.ObjectID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// PopAll transfers queued frames to dst in delivery order, stopping
// once the accumulated frame bytes would exceed maxBytes (always taking
// at least one frame). The frames' references transfer to the caller.
// An empty result means the queue is drained — check IsClosed to
// distinguish shutdown.
func (q *SendQueue) PopAll(dst []*wire.Frame, maxBytes int) []*wire.Frame {
	q.mu.Lock()
	n, total := 0, 0
	for _, it := range q.items {
		if n > 0 && total+it.f.Len() > maxBytes {
			break
		}
		dst = append(dst, it.f)
		total += it.f.Len()
		n++
	}
	if n > 0 {
		rest := copy(q.items, q.items[n:])
		for i := rest; i < len(q.items); i++ {
			q.items[i] = queuedFrame{}
		}
		q.items = q.items[:rest]
	}
	if len(q.items) == 0 {
		clear(q.stale)
	} else {
		// Budget cut the drain short; re-arm so the pump comes back.
		q.wake()
	}
	q.mu.Unlock()
	return dst
}

// PoisonAfterDrain marks the queue for disconnect-after-drain: every
// frame already queued (the Quarantine verdict among them) still
// delivers, further Enqueues are refused like Closed, and once the
// queue runs dry Poisoned reports true — the writer pump's cue to
// close the connection. Idempotent.
func (q *SendQueue) PoisonAfterDrain() {
	q.mu.Lock()
	q.poisoned = true
	q.mu.Unlock()
	q.wake()
}

// Poisoned reports whether PoisonAfterDrain ran and the queue has
// drained — everything enqueued before the poison has been popped, so
// the connection may be closed without losing the verdict.
func (q *SendQueue) Poisoned() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.poisoned && len(q.items) == 0
}

// Close releases every queued frame and marks the queue dead: future
// Enqueues release their frames and report Closed, and the notify
// channel fires one last time so a blocked pump can exit. Idempotent.
func (q *SendQueue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	items := q.items
	q.items = nil
	q.mu.Unlock()
	for _, it := range items {
		it.f.Release()
	}
	q.wake()
}
