// Package transport runs the SEVE protocol engines over real TCP — the
// deployment mode of the paper's "real experiments" (Section V), as
// opposed to the discrete-event simulation in package experiments.
//
// Framing is the length-prefixed binary format of package wire. The
// server owns a single engine goroutine driving a core.Engine — the
// single-lane core.Server, or the sharded shard.Router when
// Config.Shards > 1 (the router fans its planning phase out over its own
// lane workers; the transport still talks to it from one goroutine);
// per-connection reader and writer goroutines feed it through channels.
// When the event queue runs dry the loop flushes the router's open
// epoch, so batching never adds latency on an idle link.
package transport

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"slices"
	"sync"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/durable"
	"seve/internal/metrics"
	"seve/internal/shard"
	"seve/internal/wire"
	"seve/internal/world"
)

const (
	// sendQueueCap bounds each client's delivery queue in frames; at
	// capacity the SendQueue's superseding ladder (or, without sessions,
	// the historical drop) engages.
	sendQueueCap = 256
	// coalesceBytes caps one coalesced pump write.
	coalesceBytes = 256 << 10
)

// ServerConfig configures a TCP SEVE server.
type ServerConfig struct {
	// Core is the protocol configuration shared with the clients.
	Core core.Config
	// Init is the initial world state, shipped to joining clients in the
	// Welcome message.
	Init *world.State
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// Durable, when non-nil, is the durability pipeline from
	// durable.Open: the engine's commit feed is journaled through it
	// (group commit, per-lane segments, epoch checkpoints — the
	// Section II "commit at periodic checkpoints" layer, now entirely
	// off the engine's hot loop). Pair it with Recovery from the same
	// Open so the engine resumes against the journal.
	Durable *durable.Store
	// Recovery, when non-nil, rewinds the engine to the recovered
	// durable point before the accept loop starts: the recovered state
	// replaces Init, the watermarks and session table are restored, and
	// Welcome/CatchUp messages carry the new boot generation.
	Recovery *durable.Recovery
	// ReadTimeout, when positive, is the idle-read deadline applied to
	// each connection: a client that sends nothing (not even the Hello)
	// for this long is disconnected and unregistered, so silently dead
	// links cannot hold slots and interest masks forever. Zero keeps the
	// historical behavior of waiting indefinitely.
	ReadTimeout time.Duration
}

// Server accepts SEVE clients and serializes their actions.
type Server struct {
	cfg    ServerConfig
	engine core.Engine
	// init is the world shipped in Welcome messages: the configured
	// Init, or the recovered state when booting from a journal.
	init *world.State
	// boot is the engine's recovery generation (0 when not restored).
	boot uint64
	// durableStalled remembers that the degrade policy silenced the
	// server, so the log line fires once.
	durableStalled bool
	// superseding selects the SendQueue delivery mode (DESIGN.md §13):
	// true when the engine retains sessions (ResumeWindow > 0), can
	// answer a mid-session SnapshotCatchUp, and the ablation knob
	// Config.DisableSuperseding is off. HybridRelay fan-out bypasses the
	// per-client plan metadata, so it also forces plain FIFO.
	superseding bool

	events chan serverEvent
	done   chan struct{}

	mu      sync.Mutex
	writers map[action.ClientID]*SendQueue
	nextID  action.ClientID
	started time.Time
	closed  bool

	// ctrs is shared by every client's SendQueue so supersession totals
	// survive disconnects.
	ctrs DeliveryCounters

	wg sync.WaitGroup
}

type serverEvent struct {
	from action.ClientID
	msg  wire.Msg
	// join is non-nil for a new connection: the channel receives the
	// assigned id after registration.
	join chan action.ClientID
	// interestMask accompanies a join (Section IV-A subscription).
	interestMask uint64
	// leave marks a disconnect.
	leave bool
	// resume is non-nil when a connection opened with a Resume handshake
	// instead of Hello; resumed receives the resolved id (0 = rejected)
	// once the engine has answered and the writer is registered. A
	// rejection carries the verdict message the connection should write
	// before hanging up — CatchUp{OK: false} for unknown/stale tokens,
	// the Quarantine verdict for a quarantined ledger.
	resume  *wire.Resume
	resumed chan resumeReply
	// writeQ identifies the connection behind a resume or leave: the
	// resume case registers it as the client's writer; the leave case
	// tears the client down only if this queue is still the registered
	// one, so a stale disconnect racing a resumed successor cannot
	// unregister the new connection.
	writeQ *SendQueue
}

// NewServer returns an unstarted server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	init := cfg.Init
	if cfg.Recovery != nil {
		// Boot-time recovery: the journal's reconstructed state IS the
		// world — the engine starts over it and fresh joiners are seeded
		// from it (Algorithm 6 closures cover anything newer).
		init = cfg.Recovery.State
	}
	s := &Server{
		cfg:     cfg,
		engine:  shard.NewEngine(cfg.Core, init),
		init:    init,
		events:  make(chan serverEvent, 1024),
		done:    make(chan struct{}),
		writers: make(map[action.ClientID]*SendQueue),
		started: time.Now(),
	}
	if cfg.Recovery != nil {
		if r, ok := s.engine.(core.Restorer); ok {
			// Rewind the watermarks and session table to the recovered
			// point: crash-restart = the server resumes against itself.
			r.Restore(cfg.Recovery.Restore)
			s.boot = r.Boot()
		}
	}
	if cfg.Durable != nil {
		s.engine.SetJournal(cfg.Durable)
	}
	if _, ok := s.engine.(core.Superseder); ok {
		s.superseding = cfg.Core.ResumeWindow > 0 &&
			!cfg.Core.DisableSuperseding && !cfg.Core.HybridRelay
	}
	return s
}

// Serve accepts connections on l until Close. It blocks.
func (s *Server) Serve(l net.Listener) error {
	s.wg.Add(1)
	go s.engineLoop()

	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Close stops the engine loop and disconnects everyone. The listener
// passed to Serve must be closed by the caller (Serve returns nil once
// it observes the closed state).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	if c, ok := s.engine.(interface{ Close() }); ok {
		c.Close()
	}
}

// Installed reports the server's installed serial position.
func (s *Server) Installed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Installed()
}

// Metrics snapshots the engine's cumulative counters, folding in the
// transport-level delivery-queue ones.
func (s *Server) Metrics() metrics.ServerStats {
	s.mu.Lock()
	st := s.engine.Metrics()
	s.mu.Unlock()
	st.WriteQueueDrops = int(s.ctrs.Drops.Load())
	st.FramesSuperseded = int(s.ctrs.Superseded.Load())
	st.FramesCoalesced = int(s.ctrs.Coalesced.Load())
	st.MaxStaleObjects = int(s.ctrs.MaxStale.Load())
	if d := s.cfg.Durable; d != nil {
		ds := d.Stats()
		st.WALGroupCommits = ds.GroupCommits
		st.WALCheckpoints = ds.Checkpoints
		st.WALAppendErrors = ds.AppendErrors
		st.WALShedRecords = ds.ShedRecords
		if ds.Emitted > ds.Durable {
			st.WALBehindSeq = ds.Emitted - ds.Durable
		}
	}
	return st
}

// RouterMetrics snapshots the shard router's counters; the zero value
// when the server runs the single-lane engine.
func (s *Server) RouterMetrics() metrics.RouterStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.engine.(*shard.Router); ok {
		return r.RouterMetrics()
	}
	return metrics.RouterStats{}
}

func (s *Server) nowMs() float64 {
	return float64(time.Since(s.started)) / float64(time.Millisecond)
}

// engineLoop owns the core.Server: all protocol state transitions happen
// here, in arrival order, mirroring the simulator's semantics.
func (s *Server) engineLoop() {
	defer s.wg.Done()
	var ticker *time.Ticker
	var tickC <-chan time.Time
	if s.cfg.Core.Mode >= core.ModeFirstBound {
		ticker = time.NewTicker(time.Duration(s.cfg.Core.PushIntervalMs() * float64(time.Millisecond)))
		tickC = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-s.done:
			return
		case <-tickC:
			s.mu.Lock()
			out := s.engine.Tick(s.nowMs())
			s.mu.Unlock()
			s.dispatch(out)
		case ev := <-s.events:
			s.handleEvent(ev)
			if len(s.events) == 0 {
				// Queue ran dry: close the router's open epoch so
				// buffered submissions are answered now rather than on
				// the next arrival.
				s.flushEngine()
			}
		}
	}
}

// flushEngine flushes the engine's open epoch, if it batches at all.
func (s *Server) flushEngine() {
	f, ok := s.engine.(core.Flusher)
	if !ok {
		return
	}
	s.mu.Lock()
	out := f.Flush()
	s.mu.Unlock()
	s.dispatch(out)
}

func (s *Server) handleEvent(ev serverEvent) {
	switch {
	case ev.join != nil:
		s.mu.Lock()
		s.nextID++
		id := s.nextID
		s.engine.RegisterClient(id, ev.interestMask)
		s.mu.Unlock()
		ev.join <- id
	case ev.leave:
		s.mu.Lock()
		if ev.writeQ == nil || s.writers[ev.from] == ev.writeQ {
			s.engine.UnregisterClient(ev.from)
			delete(s.writers, ev.from)
			// The writer pump has exited (or is about to); closing the
			// queue releases anything dispatch enqueued after it stopped
			// draining and makes later enqueues self-releasing no-ops.
			if ev.writeQ != nil {
				ev.writeQ.Close()
			}
		}
		s.mu.Unlock()
	case ev.resume != nil:
		s.handleResume(ev)
	default:
		s.mu.Lock()
		out := s.engine.HandleMsg(ev.from, ev.msg, s.nowMs())
		s.mu.Unlock()
		s.dispatch(out)
	}
}

// handleResume runs the engine's resume verdict and, on acceptance,
// registers the arriving connection's writer BEFORE dispatching, so the
// CatchUp and every replayed batch land on the new connection in order.
// Rejections leave the writer unregistered; the connection goroutine
// writes the CatchUp{OK: false} itself and hangs up.
func (s *Server) handleResume(ev serverEvent) {
	r, ok := s.engine.(core.Resumer)
	if !ok {
		ev.resumed <- resumeReply{reject: &wire.CatchUp{}}
		return
	}
	s.mu.Lock()
	cid, out := r.HandleResume(ev.resume, s.nowMs())
	if cid != 0 {
		if old, dup := s.writers[cid]; dup && old != ev.writeQ {
			// The previous connection is still registered (its reader has
			// not noticed the death yet). The resumed connection wins;
			// the stale leave will no-op against the new queue.
			old.Close()
		}
		s.writers[cid] = ev.writeQ
	}
	s.mu.Unlock()
	if cid != 0 {
		ev.resumed <- resumeReply{id: cid}
		s.dispatch(out)
		return
	}
	// Rejected: relay the engine's verdict (addressed To: 0 — this
	// connection) so a quarantined client hears the Quarantine reason
	// rather than a generic stale-token CatchUp.
	reject := wire.Msg(&wire.CatchUp{})
	if len(out.Replies) == 1 {
		reject = out.Replies[0].Msg
	}
	ev.resumed <- resumeReply{reject: reject}
}

// resumeReply is the engine's answer to a Resume handshake: the
// resolved client id, or (id 0) the rejection verdict to write before
// hanging up.
type resumeReply struct {
	id     action.ClientID
	reject wire.Msg
}

// dispatch fans an engine output out to the writers, then settles any
// snapshot requests the delivery queues raised: for each client whose
// queue overflowed with unsupersedable frames, it asks the engine for a
// blind-write SnapshotCatchUp and dispatches those replies too. The
// snapshot replies go through the same enqueue path; the
// DeliverySnapshot frame replaces the stale queue content in place,
// which is what clears the request.
func (s *Server) dispatch(out core.ServerOutput) {
	if len(out.Replies) > 0 && s.durableSilenced() {
		// DegradeBlock + a dead journal: stop acknowledging. Replies we
		// cannot journal behind must not reach clients, or they would
		// believe in state the log can no longer reproduce.
		return
	}
	needSnap := s.dispatchReplies(out.Replies)
	if len(needSnap) == 0 {
		return
	}
	sup, ok := s.engine.(core.Superseder)
	if !ok {
		return
	}
	for _, cid := range needSnap {
		s.mu.Lock()
		if _, live := s.writers[cid]; !live {
			s.mu.Unlock()
			continue
		}
		snap := sup.SnapshotCatchUp(cid, s.nowMs())
		s.mu.Unlock()
		// The snapshot empties the queue it lands on, so a second
		// NeedSnapshot here is impossible in practice; if one did
		// surface, the queue's wantSnap flag persists and the next
		// dispatch retries.
		s.dispatchReplies(snap.Replies)
	}
}

// durableSilenced reports whether the degrade policy demands the
// server stop acknowledging: the journal latched an I/O error and the
// policy is DegradeBlock (DegradeShed keeps serving and only counts
// the loss). Logs once on the transition.
func (s *Server) durableSilenced() bool {
	d := s.cfg.Durable
	if d == nil || d.Degrade() != durable.DegradeBlock || d.Err() == nil {
		return false
	}
	if !s.durableStalled {
		s.durableStalled = true
		s.cfg.Logf("transport: journal failed (%v); withholding acknowledgements", d.Err())
	}
	return true
}

// dispatchReplies encodes every reply once into a pooled frame and
// enqueues it on the recipient's delivery queue, returning the clients
// whose queues requested a snapshot catch-up. Sibling push batches share
// their envelope section through the per-call EncodeCache, so a fan-out
// of n recipients serializes the (large) envelope bytes exactly once
// plus n small headers. Each frame carries one reference, consumed by
// the queue; s.mu is held only to snapshot the writer map — encoding and
// enqueueing run outside it, so a fan-out to thousands of clients no
// longer blocks handshakes, metrics readers, and the resume path.
func (s *Server) dispatchReplies(reps []core.Reply) []action.ClientID {
	if len(reps) == 0 {
		return nil
	}
	queues := make([]*SendQueue, len(reps))
	s.mu.Lock()
	for i := range reps {
		queues[i] = s.writers[reps[i].To]
	}
	s.mu.Unlock()
	var cache wire.EncodeCache
	defer cache.Reset()
	var needSnap []action.ClientID
	for i := range reps {
		rep := &reps[i]
		q := queues[i]
		if q == nil {
			continue
		}
		f := wire.NewFrameCached(&cache, rep.Msg)
		switch q.Enqueue(f, rep.Deliver) {
		case NeedSnapshot:
			if !slices.Contains(needSnap, rep.To) {
				needSnap = append(needSnap, rep.To)
			}
		case Dropped:
			// A client that cannot drain its queue is effectively dead;
			// dropping here instead of blocking keeps one slow client
			// from stalling the world.
			s.cfg.Logf("transport: client %d write queue full; dropping message", rep.To)
		}
		if _, isQuar := rep.Msg.(*wire.Quarantine); isQuar {
			// Integrity verdict: the client hears why, then the writer
			// pump hangs up. The reader's leave event unregisters the
			// engine-side client; the quarantined ledger itself survives
			// both the unregister and any later resume attempt.
			q.PoisonAfterDrain()
			s.cfg.Logf("transport: client %d quarantined; disconnecting", rep.To)
		}
	}
	return needSnap
}

// handleConn performs the opening handshake — Hello/Welcome for a fresh
// join, Resume/CatchUp for a reconnect — then pumps frames.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	s.armReadDeadline(conn)
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		s.cfg.Logf("transport: handshake read: %v", err)
		return
	}

	writeQ := NewSendQueue(sendQueueCap, s.superseding, &s.ctrs)
	// connDone unblocks the writer pump when this reader exits, so a
	// vanished client cannot strand the pump goroutine (and the pooled
	// frames queued behind it) until server shutdown.
	connDone := make(chan struct{})
	defer close(connDone)

	var id action.ClientID
	switch h := msg.(type) {
	case *wire.Hello:
		join := make(chan action.ClientID, 1)
		select {
		case s.events <- serverEvent{join: join, interestMask: h.InterestMask}:
		case <-s.done:
			return
		}
		id = <-join

		var token uint64
		s.mu.Lock()
		s.writers[id] = writeQ
		initWrites := stateWrites(s.init)
		if r, ok := s.engine.(core.Resumer); ok {
			token = r.SessionToken(id)
		}
		s.mu.Unlock()

		if err := wire.WriteFrame(conn, &wire.Welcome{You: id, Token: token, Boot: s.boot, Init: initWrites}); err != nil {
			s.cfg.Logf("transport: welcome write to %d: %v", id, err)
			return
		}
		s.cfg.Logf("transport: client %d joined from %s", id, conn.RemoteAddr())
	case *wire.Resume:
		resumed := make(chan resumeReply, 1)
		select {
		case s.events <- serverEvent{resume: h, resumed: resumed, writeQ: writeQ}:
		case <-s.done:
			return
		}
		rr := <-resumed
		id = rr.id
		if id == 0 {
			// Unknown/stale token or quarantined ledger: write the
			// engine's verdict and hang up. The client treats either as
			// permanent and surfaces a violation.
			_ = wire.WriteFrame(conn, rr.reject)
			s.cfg.Logf("transport: resume rejected from %s", conn.RemoteAddr())
			return
		}
		s.cfg.Logf("transport: client %d resumed from %s", id, conn.RemoteAddr())
	default:
		s.cfg.Logf("transport: expected Hello or Resume, got type %d", msg.Type())
		return
	}

	// Writer pump: coalesce whatever has queued since the last write
	// into one pooled buffer and hand the kernel a single Write —
	// per-tick fan-out becomes one syscall per connection instead of one
	// per frame. PopAll transfers frame ownership here; closing the queue
	// on exit releases anything still buffered so it returns to the pool.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer writeQ.Close()
		var frames []*wire.Frame
		for {
			select {
			case <-writeQ.Notify():
				for {
					// Cap one coalesced write; a pathological backlog
					// flushes in several writes rather than growing an
					// unpoolable buffer.
					frames = writeQ.PopAll(frames[:0], coalesceBytes)
					if len(frames) == 0 {
						break
					}
					size := 0
					for _, f := range frames {
						size += f.Len()
					}
					buf := wire.GetBuf(size)
					for _, f := range frames {
						buf = append(buf, f.Bytes()...)
						f.Release()
					}
					_, err := conn.Write(buf)
					wire.PutBuf(buf)
					if err != nil {
						return
					}
				}
				if writeQ.IsClosed() {
					return
				}
				if writeQ.Poisoned() {
					// Quarantine verdict delivered; hang up. The closed
					// conn errors the reader pump, whose leave event
					// unregisters the client.
					conn.Close()
					return
				}
			case <-connDone:
				return
			case <-s.done:
				return
			}
		}
	}()

	// Reader pump (this goroutine).
	for {
		s.armReadDeadline(conn)
		m, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.cfg.Logf("transport: client %d read: %v", id, err)
			}
			select {
			case s.events <- serverEvent{from: id, leave: true, writeQ: writeQ}:
			case <-s.done:
			}
			return
		}
		select {
		case s.events <- serverEvent{from: id, msg: m}:
		case <-s.done:
			return
		}
	}
}

// armReadDeadline applies the idle-read deadline, if one is configured.
// Re-armed before every frame read, so the deadline measures silence,
// not connection lifetime.
func (s *Server) armReadDeadline(conn net.Conn) {
	if s.cfg.ReadTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	}
}

// stateWrites flattens a state into write records for the Welcome.
func stateWrites(st *world.State) []world.Write {
	ids := st.IDs()
	ws := make([]world.Write, 0, len(ids))
	for _, id := range ids {
		v, _ := st.Get(id)
		ws = append(ws, world.Write{ID: id, Val: v.Clone()})
	}
	return ws
}

var _ = log.Printf // reserved for debug builds
