package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"seve/internal/core"
	"seve/internal/manhattan"
	"seve/internal/wire"
	"seve/internal/world"
)

// TestWriteQueueDropCounter pins the slow-client accounting: replies
// that cannot be queued are dropped (never block the engine loop) and
// every drop lands in ServerStats.WriteQueueDrops.
func TestWriteQueueDropCounter(t *testing.T) {
	srv := NewServer(ServerConfig{Core: protocolConfig(), Init: world.NewState()})
	// A writer whose pump never runs: one slot, then the queue is full.
	// Built non-superseding so a full queue drops (the FIFO ladder rung).
	q := NewSendQueue(1, false, &srv.ctrs)
	srv.mu.Lock()
	srv.writers[7] = q
	srv.mu.Unlock()

	var out core.ServerOutput
	for i := 0; i < 3; i++ {
		out.Replies = append(out.Replies, core.Reply{To: 7, Msg: &wire.Batch{}})
	}
	// A reply to a never-registered client is skipped, not counted: the
	// counter measures backpressure, not departures.
	out.Replies = append(out.Replies, core.Reply{To: 99, Msg: &wire.Batch{}})
	srv.dispatch(out)

	if got := srv.Metrics().WriteQueueDrops; got != 2 {
		t.Fatalf("WriteQueueDrops = %d, want 2", got)
	}
	srv.dispatch(core.ServerOutput{Replies: []core.Reply{{To: 7, Msg: &wire.Batch{}}}})
	if got := srv.Metrics().WriteQueueDrops; got != 3 {
		t.Fatalf("WriteQueueDrops = %d after second burst, want 3", got)
	}
	q.Close()
}

// TestReadTimeoutDisconnectsSilentClient: with ReadTimeout set, a
// client that handshakes and then goes silent is disconnected; without
// it the historical wait-forever behavior must survive.
func TestReadTimeoutDisconnectsSilentClient(t *testing.T) {
	cfg := protocolConfig()
	srv := NewServer(ServerConfig{
		Core:        cfg,
		Init:        world.NewState(),
		ReadTimeout: 150 * time.Millisecond,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		l.Close()
		<-serveDone
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, &wire.Hello{}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadFrame(conn); err != nil {
		t.Fatalf("welcome read: %v", err)
	}
	// Stay silent. The server must hang up within a few timeouts; our
	// own deadline only bounds the test if it never does.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("server sent a frame to a silent client with no pushes configured")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("server did not disconnect the silent client")
	}

	// A silent pre-handshake connection is reaped too.
	conn2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	start = time.Now()
	one := make([]byte, 1)
	if _, err := conn2.Read(one); err == nil || time.Since(start) > 3*time.Second {
		t.Fatal("server did not reap the silent pre-handshake connection")
	}
}

// TestEndToEndTCPSharded reruns the full TCP round-trip on the sharded
// engine: every move must still commit and install, which also proves
// the engine loop's flush-on-idle (a buffered epoch that never flushed
// would stall every lone submission forever).
func TestEndToEndTCPSharded(t *testing.T) {
	w := testWorld()
	init := w.InitialState(0)
	cfg := protocolConfig()
	cfg.Shards = 4

	srv := NewServer(ServerConfig{Core: cfg, Init: init, Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		l.Close()
		<-serveDone
	}()

	const clients = 3
	const movesPer = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*2)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(l.Addr().String(), cfg, 0)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			committed := make(chan core.Commit, movesPer)
			cl.OnCommit = func(c core.Commit) { committed <- c }
			go func() { _ = cl.Run() }()

			avatar := manhattan.AvatarID(int(cl.ID()))
			for m := 0; m < movesPer; m++ {
				var mv *manhattan.MoveAction
				cl.Engine(func(e *core.Client) {
					mv, err = w.NewMove(e.NextActionID(), avatar, e.Optimistic())
				})
				if err != nil {
					errs <- err
					return
				}
				if _, err := cl.Submit(mv); err != nil {
					errs <- err
					return
				}
				select {
				case <-committed:
				case <-time.After(10 * time.Second):
					errs <- timeoutErr{}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Installed() != clients*movesPer && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Installed(); got != clients*movesPer {
		t.Fatalf("sharded server installed %d of %d actions", got, clients*movesPer)
	}
	if rs := srv.RouterMetrics(); rs.Shards != 4 || rs.Epochs == 0 {
		t.Fatalf("router stats not live: %+v", rs)
	}
}
