package transport

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"seve/internal/core"
	"seve/internal/wire"
	"seve/internal/world"
)

// batchFrame builds a pooled push-batch frame with the given sequencing,
// plus the delivery metadata the engine would attach.
func batchFrame(seq uint64, fp ...world.ObjectID) (*wire.Frame, core.Delivery) {
	f := wire.NewFrame(&wire.Batch{Push: true, InstalledUpTo: seq, ClientSeq: seq})
	return f, core.Delivery{Class: core.DeliveryBatch, Footprint: fp, Epoch: seq}
}

func popBytes(t *testing.T, q *SendQueue) []byte {
	t.Helper()
	var buf bytes.Buffer
	for {
		frames := q.PopAll(nil, 1<<30)
		if len(frames) == 0 {
			return buf.Bytes()
		}
		for _, f := range frames {
			buf.Write(f.Bytes())
			f.Release()
		}
	}
}

// TestSendQueueKeepUpFIFO: under capacity the queue is a byte-preserving
// FIFO whether or not superseding is armed — the equivalence invariant's
// queue-level half.
func TestSendQueueKeepUpFIFO(t *testing.T) {
	for _, sup := range []bool{false, true} {
		var ctrs DeliveryCounters
		q := NewSendQueue(8, sup, &ctrs)
		var want bytes.Buffer
		for seq := uint64(1); seq <= 5; seq++ {
			f, d := batchFrame(seq, world.ObjectID(seq))
			want.Write(f.Bytes())
			if v := q.Enqueue(f, d); v != Enqueued {
				t.Fatalf("sup=%v seq=%d: verdict %v, want Enqueued", sup, seq, v)
			}
		}
		select {
		case <-q.Notify():
		default:
			t.Fatalf("sup=%v: no notify after enqueues", sup)
		}
		if got := popBytes(t, q); !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("sup=%v: popped bytes diverge from FIFO order", sup)
		}
		if n := ctrs.Superseded.Load() + ctrs.Coalesced.Load() + ctrs.Drops.Load(); n != 0 {
			t.Fatalf("sup=%v: counters moved on a keep-up client: %d", sup, n)
		}
		q.Close()
	}
}

// TestSendQueueDropMode: without superseding a full queue drops the
// incoming frame and counts it — the historical behavior.
func TestSendQueueDropMode(t *testing.T) {
	var ctrs DeliveryCounters
	q := NewSendQueue(2, false, &ctrs)
	for seq := uint64(1); seq <= 2; seq++ {
		f, d := batchFrame(seq)
		q.Enqueue(f, d)
	}
	f, d := batchFrame(3)
	if v := q.Enqueue(f, d); v != Dropped {
		t.Fatalf("verdict %v, want Dropped", v)
	}
	if got := ctrs.Drops.Load(); got != 1 {
		t.Fatalf("Drops = %d, want 1", got)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after drop, want 2", q.Len())
	}
	q.Close()
}

// TestSendQueueCoalesceAtCap: a contiguous batch merges into the
// undelivered tail in place; the merged frame decodes as one batch
// covering both sequence numbers.
func TestSendQueueCoalesceAtCap(t *testing.T) {
	var ctrs DeliveryCounters
	q := NewSendQueue(2, true, &ctrs)
	for seq := uint64(1); seq <= 2; seq++ {
		f, d := batchFrame(seq, world.ObjectID(seq))
		q.Enqueue(f, d)
	}
	f, d := batchFrame(3, world.ObjectID(9))
	if v := q.Enqueue(f, d); v != Coalesced {
		t.Fatalf("verdict %v, want Coalesced", v)
	}
	if got := ctrs.Coalesced.Load(); got != 1 {
		t.Fatalf("Coalesced = %d, want 1", got)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after coalesce, want 2", q.Len())
	}
	// The second frame arrived while one was already queued, so its
	// footprint is stale; the first was the head with no backlog.
	if got := q.StaleObjects(); got != 2 {
		t.Fatalf("StaleObjects = %d, want 2 (objects 2 and 9)", got)
	}

	frames := q.PopAll(nil, 1<<30)
	if len(frames) != 2 {
		t.Fatalf("popped %d frames, want 2", len(frames))
	}
	m, err := wire.ReadFrame(bytes.NewReader(frames[1].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	mb := m.(*wire.Batch)
	if mb.ClientSeq != 3 || mb.CoversFrom != 2 {
		t.Fatalf("merged batch seq=%d covers=%d, want 3 covering 2", mb.ClientSeq, mb.CoversFrom)
	}
	for _, f := range frames {
		f.Release()
	}
	if got := q.StaleObjects(); got != 0 {
		t.Fatalf("StaleObjects = %d after drain, want 0", got)
	}
	q.Close()
}

// TestSendQueueSnapshotEscalation walks the full ladder: an unmergeable
// frame at capacity sheds and requests a snapshot, further supersedable
// frames are discarded under the pending request, ordered frames still
// get through, and the snapshot itself replaces everything supersedable.
func TestSendQueueSnapshotEscalation(t *testing.T) {
	var ctrs DeliveryCounters
	q := NewSendQueue(2, true, &ctrs)
	// Two covered-drop notices: not batches, so the coalesce rung refuses.
	for i := 0; i < 2; i++ {
		f := wire.NewFrame(&wire.Drop{})
		q.Enqueue(f, core.Delivery{Class: core.DeliveryCovered})
	}
	f, d := batchFrame(1)
	if v := q.Enqueue(f, d); v != NeedSnapshot {
		t.Fatalf("verdict %v, want NeedSnapshot", v)
	}
	// Under the pending request supersedable frames are discarded...
	f, d = batchFrame(2)
	if v := q.Enqueue(f, d); v != NeedSnapshot {
		t.Fatalf("discard verdict %v, want NeedSnapshot", v)
	}
	if got := ctrs.Superseded.Load(); got != 2 {
		t.Fatalf("Superseded = %d after two sheds, want 2", got)
	}
	// ...but an ordered control frame is appended past the cap.
	ord := wire.NewFrame(&wire.CatchUp{OK: true})
	if v := q.Enqueue(ord, core.Delivery{Class: core.DeliveryOrdered}); v != Enqueued {
		t.Fatalf("ordered verdict %v, want Enqueued", v)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d with ordered overflow, want 3", q.Len())
	}

	// The snapshot replaces both covered frames, keeps the ordered one,
	// and clears the pending request.
	snapBody := &wire.CatchUp{OK: true, Snapshot: true, NextBatchSeq: 7}
	snap := wire.NewFrame(snapBody)
	v := q.Enqueue(snap, core.Delivery{Class: core.DeliverySnapshot, Epoch: 7})
	if v != Enqueued {
		t.Fatalf("snapshot verdict %v, want Enqueued", v)
	}
	if got := ctrs.Superseded.Load(); got != 4 {
		t.Fatalf("Superseded = %d after replacement, want 4", got)
	}
	frames := q.PopAll(nil, 1<<30)
	if len(frames) != 2 {
		t.Fatalf("popped %d frames after replacement, want ordered+snapshot", len(frames))
	}
	last, err := wire.ReadFrame(bytes.NewReader(frames[1].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cu, ok := last.(*wire.CatchUp); !ok || !cu.Snapshot || cu.NextBatchSeq != 7 {
		t.Fatalf("tail frame is not the snapshot: %#v", last)
	}
	for _, f := range frames {
		f.Release()
	}

	// With the request cleared and room available, delivery resumes FIFO.
	f, d = batchFrame(7)
	if v := q.Enqueue(f, d); v != Enqueued {
		t.Fatalf("post-snapshot verdict %v, want Enqueued", v)
	}
	q.Close()
}

// TestSendQueuePopAllBudget: the byte budget splits a backlog across
// writes without losing frames, always making progress.
func TestSendQueuePopAllBudget(t *testing.T) {
	var ctrs DeliveryCounters
	q := NewSendQueue(8, true, &ctrs)
	var sizes []int
	for seq := uint64(1); seq <= 4; seq++ {
		f, d := batchFrame(seq)
		sizes = append(sizes, f.Len())
		q.Enqueue(f, d)
	}
	// Budget fits exactly two frames.
	frames := q.PopAll(nil, sizes[0]+sizes[1])
	if len(frames) != 2 {
		t.Fatalf("popped %d frames under budget, want 2", len(frames))
	}
	for _, f := range frames {
		f.Release()
	}
	// The cut must have re-armed the notify.
	select {
	case <-q.Notify():
	default:
		t.Fatal("no notify re-arm after a budget-cut PopAll")
	}
	// A budget smaller than one frame still takes one.
	frames = q.PopAll(nil, 1)
	if len(frames) != 1 {
		t.Fatalf("popped %d frames with a tiny budget, want 1", len(frames))
	}
	frames[0].Release()
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	q.Close()
}

// TestSendQueueClose: close releases the backlog, later enqueues are
// self-releasing no-ops, and a second close is harmless. Release panics
// on a double-free, so running clean IS the assertion.
func TestSendQueueClose(t *testing.T) {
	var ctrs DeliveryCounters
	q := NewSendQueue(8, true, &ctrs)
	for seq := uint64(1); seq <= 3; seq++ {
		f, d := batchFrame(seq)
		q.Enqueue(f, d)
	}
	q.Close()
	if !q.IsClosed() {
		t.Fatal("IsClosed false after Close")
	}
	f, d := batchFrame(4)
	if v := q.Enqueue(f, d); v != Closed {
		t.Fatalf("verdict %v after close, want Closed", v)
	}
	if frames := q.PopAll(nil, 1<<30); len(frames) != 0 {
		t.Fatalf("PopAll returned %d frames after close", len(frames))
	}
	q.Close()
}

// TestSendQueueConcurrentRace drives enqueue, pop, and close from
// separate goroutines. The pool sentinels turn any double-release or
// use-after-free into a panic, and -race covers the ordering; the test
// asserts the conservation law the counters must obey: every frame is
// accounted exactly once.
func TestSendQueueConcurrentRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		var ctrs DeliveryCounters
		q := NewSendQueue(4, true, &ctrs)
		const producers = 3
		const perProducer = 200
		var enqueued, coalesced, popped int64
		var mu sync.Mutex
		var wg sync.WaitGroup

		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					var f *wire.Frame
					var d core.Delivery
					switch {
					case i%31 == 30:
						f = wire.NewFrame(&wire.CatchUp{OK: true, Snapshot: true})
						d = core.Delivery{Class: core.DeliverySnapshot}
					case i%7 == 6:
						f = wire.NewFrame(&wire.Drop{})
						d = core.Delivery{Class: core.DeliveryCovered}
					default:
						f, d = batchFrame(uint64(p*perProducer + i + 1))
					}
					v := q.Enqueue(f, d)
					mu.Lock()
					switch v {
					case Enqueued:
						enqueued++
					case Coalesced:
						coalesced++
					}
					mu.Unlock()
				}
			}(p)
		}

		popDone := make(chan struct{})
		go func() {
			defer close(popDone)
			var frames []*wire.Frame
			for {
				select {
				case <-q.Notify():
				default:
					if q.IsClosed() {
						return
					}
				}
				frames = q.PopAll(frames[:0], 16<<10)
				if len(frames) == 0 && q.IsClosed() {
					return
				}
				for _, f := range frames {
					_ = f.Bytes()
					f.Release()
					mu.Lock()
					popped++
					mu.Unlock()
				}
			}
		}()

		wg.Wait()
		// Even rounds close immediately so teardown races the popper's
		// drain; odd rounds let the popper drain the tail first.
		if round%2 == 1 {
			for q.Len() > 0 {
				runtime.Gosched()
			}
		}
		q.Close()
		<-popDone

		// Conservation: every Enqueued frame was either popped (and
		// released by the popper), replaced by a snapshot or coalesce
		// (released in place, counted), or released by Close.
		mu.Lock()
		if popped > enqueued {
			t.Fatalf("round %d: popped %d frames but only %d were enqueued", round, popped, enqueued)
		}
		mu.Unlock()
	}
}

// TestSendQueueStaleGauge: footprints only count while a backlog exists,
// the union deduplicates, and draining resets the gauge but not the
// shared high-water mark.
func TestSendQueueStaleGauge(t *testing.T) {
	var ctrs DeliveryCounters
	q := NewSendQueue(8, true, &ctrs)
	f, d := batchFrame(1, 1, 2)
	q.Enqueue(f, d) // head of line: not stale
	if got := q.StaleObjects(); got != 0 {
		t.Fatalf("StaleObjects = %d with no backlog, want 0", got)
	}
	f, d = batchFrame(2, 2, 3)
	q.Enqueue(f, d)
	f, d = batchFrame(3, 5)
	q.Enqueue(f, d)
	if got := q.StaleObjects(); got != 3 {
		t.Fatalf("StaleObjects = %d, want 3 (2,3,5)", got)
	}
	if got := ctrs.MaxStale.Load(); got != 3 {
		t.Fatalf("MaxStale = %d, want 3", got)
	}
	popBytes(t, q)
	if got := q.StaleObjects(); got != 0 {
		t.Fatalf("StaleObjects = %d after drain, want 0", got)
	}
	if got := ctrs.MaxStale.Load(); got != 3 {
		t.Fatalf("MaxStale high-water = %d after drain, want 3", got)
	}
	q.Close()
}
