package transport

import (
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"seve/internal/core"
	"seve/internal/manhattan"
	"seve/internal/wire"
)

func resumeConfig() core.Config {
	cfg := protocolConfig()
	cfg.ResumeWindow = 8
	return cfg
}

// TestReconnectResumesSession hard-closes a client's socket mid-session
// and verifies the transport re-dials, resumes with the server-granted
// token, and keeps committing on the same engine — no re-join, no lost
// identity.
func TestReconnectResumesSession(t *testing.T) {
	w := testWorld()
	init := w.InitialState(0)
	cfg := resumeConfig()

	srv := NewServer(ServerConfig{Core: cfg, Init: init, Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		l.Close()
		<-serveDone
	}()

	cl, err := Dial(l.Addr().String(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Token() == 0 {
		t.Fatal("server granted no session token despite ResumeWindow > 0")
	}
	cl.Reconnect = ReconnectConfig{
		MaxAttempts: 20,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Jitter:      0.5,
		Rand:        rand.New(rand.NewSource(1)),
	}
	committed := make(chan core.Commit, 16)
	cl.OnCommit = func(c core.Commit) { committed <- c }
	runDone := make(chan error, 1)
	go func() { runDone <- cl.Run() }()

	avatar := manhattan.AvatarID(int(cl.ID()))
	submit := func() {
		t.Helper()
		var mv *manhattan.MoveAction
		var err error
		cl.Engine(func(e *core.Client) {
			mv, err = w.NewMove(e.NextActionID(), avatar, e.Optimistic())
		})
		if err != nil {
			t.Fatal(err)
		}
		// A submit during the disconnect window may fail to write; the
		// action stays queued and the resume handshake re-submits it.
		_, _ = cl.Submit(mv)
	}
	waitCommit := func() {
		t.Helper()
		select {
		case <-committed:
		case <-time.After(10 * time.Second):
			t.Fatal("commit timeout")
		}
	}

	const before, after = 3, 3
	for i := 0; i < before; i++ {
		submit()
		waitCommit()
	}

	// Sever the link out from under the engine, as a dying network would.
	cl.mu.Lock()
	//seve:vet-ignore lockscope the test severs the conn under the client lock on purpose; Close tears down immediately rather than blocking
	cl.conn.Close()
	cl.mu.Unlock()

	// The run loop must resume rather than exit.
	deadline := time.Now().Add(10 * time.Second)
	for cl.Metrics().Resumes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("client never resumed")
		}
		select {
		case err := <-runDone:
			t.Fatalf("Run exited instead of resuming: %v", err)
		case <-time.After(5 * time.Millisecond):
		}
	}

	for i := 0; i < after; i++ {
		submit()
		waitCommit()
	}

	st := cl.Metrics()
	if st.ReconnectAttempts == 0 {
		t.Error("no reconnect attempts counted")
	}
	if st.Resumes == 0 {
		t.Error("no resumes counted on the engine")
	}
	ss := srv.Metrics()
	if ss.ResumesSuffix+ss.ResumesSnapshot == 0 {
		t.Errorf("server counted no accepted resumes: %+v", ss)
	}

	total := uint64(before + after)
	pollDeadline := time.Now().Add(5 * time.Second)
	for srv.Installed() != total && time.Now().Before(pollDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Installed(); got != total {
		t.Fatalf("server installed %d of %d actions", got, total)
	}
}

// TestResumeRejectedBadToken: a Resume with a token the server never
// granted gets CatchUp{OK: false} and a hang-up, and is counted.
func TestResumeRejectedBadToken(t *testing.T) {
	w := testWorld()
	srv := NewServer(ServerConfig{Core: resumeConfig(), Init: w.InitialState(0), Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		l.Close()
		<-serveDone
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, &wire.Resume{Token: 0xdeadbeef, LastBatchSeq: 0}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	cu, ok := msg.(*wire.CatchUp)
	if !ok {
		t.Fatalf("expected CatchUp, got type %d", msg.Type())
	}
	if cu.OK {
		t.Fatal("forged token accepted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().ResumesRejected == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Metrics().ResumesRejected == 0 {
		t.Error("rejection not counted")
	}
}

// TestWriterPumpNoLeak is the regression test for the per-connection
// writer goroutine: clients that join and vanish (including mid-resume
// handshakes) must not strand pump goroutines or pooled frames until
// server shutdown.
func TestWriterPumpNoLeak(t *testing.T) {
	w := testWorld()
	cfg := resumeConfig()
	srv := NewServer(ServerConfig{Core: cfg, Init: w.InitialState(0)})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		l.Close()
		<-serveDone
	}()

	// Warm up one connection so lazily started goroutines (pollers etc.)
	// are part of the baseline.
	warm, err := Dial(l.Addr().String(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm.Close()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	const cycles = 20
	for i := 0; i < cycles; i++ {
		cl, err := Dial(l.Addr().String(), cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Park live frames in the delivery queue: closure replies the
		// client never reads, so the teardown (leave event closing the
		// queue) races dispatch enqueues and the pump's drain. Replaced
		// or still-queued frames must all return to the pool — the pool
		// sentinels panic on a double release.
		avatar := manhattan.AvatarID(int(cl.ID()))
		for m := 0; m < 3; m++ {
			var mv *manhattan.MoveAction
			var merr error
			cl.Engine(func(e *core.Client) {
				mv, merr = w.NewMove(e.NextActionID(), avatar, e.Optimistic())
			})
			if merr != nil {
				break
			}
			if _, err := cl.Submit(mv); err != nil {
				break
			}
		}
		// Vanish without reading a single frame: the reader pump sees the
		// close, and the writer pump must follow via connDone rather than
		// waiting for a write error that may never come.
		cl.Close()

		// And a rejected resume handshake, which must not leak either.
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		wire.WriteFrame(conn, &wire.Resume{Token: uint64(i) + 1})
		wire.ReadFrame(conn)
		conn.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
