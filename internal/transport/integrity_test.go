package transport

import (
	"bytes"
	"net"
	"testing"
	"time"

	"seve/internal/core"
	"seve/internal/integrity"
	"seve/internal/manhattan"
	"seve/internal/wire"
	"seve/internal/world"
)

// TestIntegrityEquivalence is the honest-path differential: clients of
// an honest fleet receive byte-identical streams whether integrity
// enforcement is disabled outright, armed but silent (audit rate 0), or
// auditing every single completion. Validation, auditing, and repair
// are server-internal — on honest traffic they change no reply bytes.
func TestIntegrityEquivalence(t *testing.T) {
	off := supConfig()
	off.DisableIntegrity = true
	control := runKeepUp(t, off)
	if cs := control.srv.Metrics(); cs.AuditsRun != 0 {
		t.Fatalf("DisableIntegrity did not disarm the auditor: %d audits", cs.AuditsRun)
	}

	for _, tc := range []struct {
		name string
		rate float64
	}{
		{"silent", 0},     // validator armed, auditor never samples
		{"full-audit", 1}, // every completion re-executed against ζS
	} {
		t.Run(tc.name, func(t *testing.T) {
			on := supConfig()
			on.AuditRate = tc.rate
			subject := runKeepUp(t, on)

			for _, id := range subject.ids {
				got, want := subject.streams[id].Bytes(), control.streams[id].Bytes()
				if !bytes.Equal(got, want) {
					t.Fatalf("client %d: integrity stream (%d bytes) diverges from control (%d bytes)",
						id, len(got), len(want))
				}
				if len(got) == 0 {
					t.Fatalf("client %d: empty stream — the trace exercised nothing", id)
				}
			}

			ss := subject.srv.Metrics()
			if ss.ContractBreaches != 0 || ss.ForgedCompletions != 0 ||
				ss.AuditDivergences != 0 || ss.RepairedResults != 0 ||
				ss.QuarantinedClients != 0 || ss.QuarantineRejected != 0 ||
				ss.OrphanCompletions != 0 || ss.RateLimited != 0 ||
				ss.WriteSetViolations != 0 || ss.RadiusViolations != 0 {
				t.Fatalf("integrity machinery fired on honest clients: %+v", ss)
			}
			if tc.rate == 0 && ss.AuditsRun != 0 {
				t.Fatalf("auditor sampled %d completions at rate 0", ss.AuditsRun)
			}
			if tc.rate == 1 && ss.AuditsRun == 0 {
				t.Fatal("auditor never ran at rate 1")
			}
		})
	}
}

// TestQuarantineDisconnectTCP drives the full verdict path over real
// loopback TCP: a cheating client (raw socket, so the test controls
// every frame) forges a completion write outside its declared write
// set, hears the Quarantine verdict, and is hung up on; a resume with
// its still-valid session token is refused with the same verdict; an
// honest client on the same server keeps committing throughout.
func TestQuarantineDisconnectTCP(t *testing.T) {
	w := testWorld()
	init := w.InitialState(0)
	cfg := resumeConfig()

	srv := NewServer(ServerConfig{Core: cfg, Init: init, Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		l.Close()
		<-serveDone
	}()

	// Honest client over the real transport.
	honest, err := Dial(l.Addr().String(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer honest.Close()
	committed := make(chan core.Commit, 16)
	honest.OnCommit = func(c core.Commit) { committed <- c }
	honestDone := make(chan error, 1)
	go func() { honestDone <- honest.Run() }()
	avatar := manhattan.AvatarID(int(honest.ID()))
	honestSubmit := func() {
		t.Helper()
		var mv *manhattan.MoveAction
		var merr error
		honest.Engine(func(e *core.Client) {
			mv, merr = w.NewMove(e.NextActionID(), avatar, e.Optimistic())
		})
		if merr != nil {
			t.Fatal(merr)
		}
		if _, err := honest.Submit(mv); err != nil {
			t.Fatal(err)
		}
		select {
		case <-committed:
		case <-time.After(10 * time.Second):
			t.Fatal("honest commit timeout")
		}
	}
	honestSubmit()

	// Cheater: manual Hello/Welcome handshake plus a local engine, so
	// the completion can be tampered with before it hits the wire — the
	// honest-software-hostile-wire threat model (DESIGN.md §16).
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, &wire.Hello{}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	welcome, ok := msg.(*wire.Welcome)
	if !ok {
		t.Fatalf("expected Welcome, got type %d", msg.Type())
	}
	if welcome.Token == 0 {
		t.Fatal("server granted no session token despite ResumeWindow > 0")
	}
	st := world.NewState()
	for _, wr := range welcome.Init {
		st.Set(wr.ID, wr.Val)
	}
	eng := core.NewClient(welcome.You, cfg, st)
	eng.SetBoot(welcome.Boot)

	mv, err := w.NewMove(eng.NextActionID(), manhattan.AvatarID(int(welcome.You)), eng.Optimistic())
	if err != nil {
		t.Fatal(err)
	}
	smsg, _ := eng.Submit(mv)
	if err := wire.WriteFrame(conn, smsg); err != nil {
		t.Fatal(err)
	}

	// Pump the cheater's downlink, forging every outgoing completion,
	// until the verdict arrives.
	var verdict *wire.Quarantine
	forged := 0
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for verdict == nil {
		m, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatalf("cheater read before verdict (%d forged): %v", forged, err)
		}
		if q, ok := m.(*wire.Quarantine); ok {
			verdict = q
			break
		}
		out := eng.HandleMsg(m)
		for _, sm := range out.ToServer {
			if co, ok := sm.(*wire.Completion); ok {
				f := *co
				f.Res = co.Res.Clone()
				f.Res.Writes = append(f.Res.Writes, world.Write{ID: 999999, Val: world.Value{1e9}})
				sm = &f
				forged++
			}
			if err := wire.WriteFrame(conn, sm); err != nil {
				t.Fatalf("cheater write: %v", err)
			}
		}
	}
	if verdict.Reason != uint8(integrity.ViolationFootprint) {
		t.Fatalf("verdict reason = %d, want footprint (%d)", verdict.Reason, integrity.ViolationFootprint)
	}
	if forged == 0 {
		t.Fatal("verdict arrived before any completion was forged")
	}

	// Verdict delivered, queue drained: the server hangs up.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("server kept the quarantined connection open after the verdict")
	}
	conn.Close()

	// A resume with the still-valid token is refused with the verdict,
	// not a CatchUp, and the connection is dropped.
	conn2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.WriteFrame(conn2, &wire.Resume{Token: welcome.Token}); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := wire.ReadFrame(conn2)
	if err != nil {
		t.Fatalf("resume verdict read: %v", err)
	}
	q, ok := m.(*wire.Quarantine)
	if !ok {
		t.Fatalf("resume answered with type %d, want Quarantine", m.Type())
	}
	if q.Reason != uint8(integrity.ViolationQuarantined) {
		t.Fatalf("resume verdict reason = %d, want quarantined (%d)", q.Reason, integrity.ViolationQuarantined)
	}
	if _, err := wire.ReadFrame(conn2); err == nil {
		t.Fatal("server kept the rejected resume connection open")
	}

	// The honest client never felt any of it.
	honestSubmit()
	honest.Close()
	if err := <-honestDone; err != nil {
		t.Fatalf("honest Run: %v", err)
	}

	ss := srv.Metrics()
	if ss.ForgedCompletions == 0 {
		t.Fatalf("validator never counted the forgery: %+v", ss)
	}
	if ss.QuarantinedClients != 1 {
		t.Fatalf("QuarantinedClients = %d, want 1", ss.QuarantinedClients)
	}
	if ss.ResumesRejected == 0 || ss.QuarantineRejected == 0 {
		t.Fatalf("quarantined resume not rejected: resumes=%d quarantine=%d",
			ss.ResumesRejected, ss.QuarantineRejected)
	}
}
