package transport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/metrics"
	"seve/internal/wire"
	"seve/internal/world"
)

// ReconnectConfig tunes the client's resume-on-disconnect behavior.
// The zero value disables reconnection (Run returns the read error, the
// historical behavior).
type ReconnectConfig struct {
	// MaxAttempts bounds consecutive failed dials before Run gives up;
	// zero or negative disables reconnection entirely.
	MaxAttempts int
	// BaseDelay is the first backoff (default 50ms); each failed attempt
	// doubles it up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter adds up to this fraction of the current delay, randomized,
	// so a server restart does not see every client redial in lockstep.
	Jitter float64
	// Rand drives the jitter; nil seeds from the clock. Tests inject a
	// seeded source for determinism.
	Rand *rand.Rand
}

// Client is a SEVE client over TCP: a core.Client engine fed by a reader
// goroutine, with application submissions serialized against it. If the
// server granted a session token (ServerConfig.Core.ResumeWindow > 0)
// and Reconnect is configured before Run, a dropped connection is
// re-dialed with exponential backoff and the session resumed in place —
// the engine keeps its identity, queue, and stable store.
type Client struct {
	addr  string
	token uint64

	// Reconnect, if set before Run, enables resume-on-disconnect.
	Reconnect ReconnectConfig
	// OnCommit, if set before Run, receives every stable commit.
	OnCommit func(core.Commit)
	// OnDrop, if set before Run, receives Information Bound drops.
	OnDrop func(action.ID)

	mu                sync.Mutex
	conn              net.Conn
	engine            *core.Client
	closed            bool
	reconnectAttempts int
	// snapshotFallbacks counts CatchUp snapshots that arrived mid-session
	// on a live connection — the server's delivery queue overflowed and
	// superseded our backlog with a blind-write rebuild (DESIGN.md §13),
	// as opposed to the snapshots we asked for by resuming.
	snapshotFallbacks int
}

// Dial connects, performs the Hello/Welcome handshake, and returns a
// ready client whose engine is seeded with the server's initial world.
func Dial(addr string, cfg core.Config, interestMask uint64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if err := wire.WriteFrame(conn, &wire.Hello{InterestMask: interestMask}); err != nil {
		conn.Close()
		return nil, err
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: welcome: %w", err)
	}
	welcome, ok := msg.(*wire.Welcome)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("transport: expected Welcome, got type %d", msg.Type())
	}
	init := world.NewState()
	for _, w := range welcome.Init {
		init.Set(w.ID, w.Val)
	}
	engine := core.NewClient(welcome.You, cfg, init)
	// Joining under the server's current boot generation arms the
	// CatchUp fence correctly: without this a fresh client of a
	// once-restarted server (boot > 0) would treat its first benign
	// resume as a restart and roll back healthy commits.
	engine.SetBoot(welcome.Boot)
	return &Client{
		addr:   addr,
		token:  welcome.Token,
		conn:   conn,
		engine: engine,
	}, nil
}

// ID returns the server-assigned client id.
func (c *Client) ID() action.ClientID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engine.ID()
}

// Token returns the server-granted session token (0 when the server has
// resume disabled).
func (c *Client) Token() uint64 { return c.token }

// NextActionID mints an action identity.
func (c *Client) NextActionID() action.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engine.NextActionID()
}

// OptimisticRead reads an object from the optimistic state ζCO.
func (c *Client) OptimisticRead(id world.ObjectID) (world.Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.engine.Optimistic().Get(id)
	return v.Clone(), ok
}

// Engine runs f with the engine locked, for application reads that need
// a consistent multi-object view.
func (c *Client) Engine(f func(*core.Client)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(c.engine)
}

// Metrics snapshots the engine's counters plus the transport-level
// reconnect attempts.
func (c *Client) Metrics() metrics.ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.engine.Metrics()
	st.ReconnectAttempts = c.reconnectAttempts
	st.SnapshotFallbacks = c.snapshotFallbacks
	return st
}

// Submit optimistically applies a and ships it to the server, returning
// the optimistic result. A write failure during a disconnect window is
// not fatal: the action stays queued in the engine and is re-submitted
// by the resume handshake.
func (c *Client) Submit(a action.Action) (action.Result, error) {
	c.mu.Lock()
	msg, res := c.engine.Submit(a)
	conn := c.conn
	c.mu.Unlock()
	if err := wire.WriteFrame(conn, msg); err != nil {
		return res, fmt.Errorf("transport: submit: %w", err)
	}
	return res, nil
}

// Run pumps server messages until the connection closes or Close is
// called, invoking OnCommit/OnDrop as resolutions arrive. On a read
// failure with Reconnect configured and a session token in hand, it
// re-dials and resumes instead of returning. It returns nil on orderly
// shutdown.
func (c *Client) Run() error {
	for {
		c.mu.Lock()
		conn := c.conn
		c.mu.Unlock()
		msg, err := wire.ReadFrame(conn)
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			if rerr := c.resumeLoop(); rerr != nil {
				return fmt.Errorf("transport: read: %w (resume: %v)", err, rerr)
			}
			continue
		}
		c.mu.Lock()
		if cu, ok := msg.(*wire.CatchUp); ok && cu.OK && cu.Snapshot {
			c.snapshotFallbacks++
		}
		out := c.engine.HandleMsg(msg)
		conn = c.conn
		c.mu.Unlock()
		if err := c.deliver(conn, out); err != nil {
			return err
		}
		if q, ok := msg.(*wire.Quarantine); ok {
			// Integrity verdict (DESIGN.md §16): the session is over for
			// good — the server ignores this ledger's traffic and refuses
			// its resumes — so stop here instead of burning the reconnect
			// budget against guaranteed rejections.
			return quarantinedError{reason: q.Reason}
		}
	}
}

// deliver writes the engine output's server-bound messages and invokes
// the application callbacks.
func (c *Client) deliver(conn net.Conn, out core.ClientOutput) error {
	if len(out.ToServer) > 0 {
		// One batch can resolve many actions; coalesce the resulting
		// completion frames into a single pooled write.
		buf := wire.GetBuf(64)
		for _, m := range out.ToServer {
			buf = wire.AppendFrame(buf, m)
		}
		_, err := conn.Write(buf)
		wire.PutBuf(buf)
		if err != nil {
			// The reconnect path re-sends retained completions; let the
			// read loop notice the dead connection and resume.
			c.mu.Lock()
			closed := c.closed
			tok := c.token
			max := c.Reconnect.MaxAttempts
			c.mu.Unlock()
			if closed || tok == 0 || max <= 0 {
				return fmt.Errorf("transport: completion write: %w", err)
			}
		}
	}
	for _, cm := range out.Commits {
		if c.OnCommit != nil {
			c.OnCommit(cm)
		}
	}
	for _, id := range out.DroppedLocal {
		if c.OnDrop != nil {
			c.OnDrop(id)
		}
	}
	if len(out.Violations) > 0 {
		return fmt.Errorf("transport: protocol violation: %s", out.Violations[0])
	}
	return nil
}

// resumeLoop re-dials with exponential backoff and jitter, replays the
// Resume/CatchUp handshake, and swaps the healed connection in. A nil
// return means the read loop should continue on the new connection.
func (c *Client) resumeLoop() error {
	rc := c.Reconnect
	if rc.MaxAttempts <= 0 {
		return fmt.Errorf("reconnect disabled")
	}
	if c.token == 0 {
		return fmt.Errorf("server granted no session token")
	}
	base := rc.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := rc.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	rng := rc.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	delay := base
	var lastErr error
	for attempt := 0; attempt < rc.MaxAttempts; attempt++ {
		d := delay
		if rc.Jitter > 0 {
			d += time.Duration(rng.Float64() * rc.Jitter * float64(delay))
		}
		time.Sleep(d)
		if delay *= 2; delay > max {
			delay = max
		}
		c.mu.Lock()
		c.reconnectAttempts++
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil
		}
		if err := c.resumeOnce(); err != nil {
			lastErr = err
			if _, permanent := err.(resumeRejectedError); permanent {
				return err
			}
			if _, permanent := err.(quarantinedError); permanent {
				return err
			}
			continue
		}
		return nil
	}
	return fmt.Errorf("gave up after %d attempts: %w", rc.MaxAttempts, lastErr)
}

// resumeRejectedError marks a CatchUp{OK: false} verdict: the token is
// unknown or stale, so retrying is pointless.
type resumeRejectedError struct{}

func (resumeRejectedError) Error() string { return "resume rejected (token unknown or stale)" }

// quarantinedError marks a server integrity verdict (wire.Quarantine):
// the session is permanently over — the server silently ignores the
// ledger's traffic and refuses its resumes — so reconnecting is
// pointless.
type quarantinedError struct{ reason uint8 }

func (e quarantinedError) Error() string {
	return fmt.Sprintf("quarantined by server (integrity violation %d)", e.reason)
}

// resumeOnce performs one Resume/CatchUp handshake.
func (c *Client) resumeOnce() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.mu.Lock()
	last := c.engine.LastAppliedBatch()
	c.mu.Unlock()
	if err := wire.WriteFrame(conn, &wire.Resume{Token: c.token, LastBatchSeq: last}); err != nil {
		conn.Close()
		return err
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if q, ok := msg.(*wire.Quarantine); ok {
		conn.Close()
		return quarantinedError{reason: q.Reason}
	}
	cu, ok := msg.(*wire.CatchUp)
	if !ok {
		conn.Close()
		return fmt.Errorf("expected CatchUp, got type %d", msg.Type())
	}
	if !cu.OK {
		conn.Close()
		return resumeRejectedError{}
	}
	c.mu.Lock()
	out := c.engine.HandleCatchUp(cu)
	old := c.conn
	c.conn = conn
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	// Re-submissions and retained completions ride the fresh connection;
	// a failure here surfaces on the next read and retriggers the loop.
	return c.deliver(conn, out)
}

// Close shuts the connection down; a concurrent Run returns nil.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	return conn.Close()
}
