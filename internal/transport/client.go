package transport

import (
	"fmt"
	"net"
	"sync"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/wire"
	"seve/internal/world"
)

// Client is a SEVE client over TCP: a core.Client engine fed by a reader
// goroutine, with application submissions serialized against it.
type Client struct {
	conn net.Conn

	mu     sync.Mutex
	engine *core.Client

	// OnCommit, if set before Run, receives every stable commit.
	OnCommit func(core.Commit)
	// OnDrop, if set before Run, receives Information Bound drops.
	OnDrop func(action.ID)

	commits chan core.Commit
	errCh   chan error
	closed  bool
}

// Dial connects, performs the Hello/Welcome handshake, and returns a
// ready client whose engine is seeded with the server's initial world.
func Dial(addr string, cfg core.Config, interestMask uint64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if err := wire.WriteFrame(conn, &wire.Hello{InterestMask: interestMask}); err != nil {
		conn.Close()
		return nil, err
	}
	msg, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: welcome: %w", err)
	}
	welcome, ok := msg.(*wire.Welcome)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("transport: expected Welcome, got type %d", msg.Type())
	}
	init := world.NewState()
	for _, w := range welcome.Init {
		init.Set(w.ID, w.Val)
	}
	return &Client{
		conn:    conn,
		engine:  core.NewClient(welcome.You, cfg, init),
		commits: make(chan core.Commit, 256),
		errCh:   make(chan error, 1),
	}, nil
}

// ID returns the server-assigned client id.
func (c *Client) ID() action.ClientID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engine.ID()
}

// NextActionID mints an action identity.
func (c *Client) NextActionID() action.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.engine.NextActionID()
}

// OptimisticRead reads an object from the optimistic state ζCO.
func (c *Client) OptimisticRead(id world.ObjectID) (world.Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.engine.Optimistic().Get(id)
	return v.Clone(), ok
}

// Engine runs f with the engine locked, for application reads that need
// a consistent multi-object view.
func (c *Client) Engine(f func(*core.Client)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(c.engine)
}

// Submit optimistically applies a and ships it to the server, returning
// the optimistic result.
func (c *Client) Submit(a action.Action) (action.Result, error) {
	c.mu.Lock()
	msg, res := c.engine.Submit(a)
	c.mu.Unlock()
	if err := wire.WriteFrame(c.conn, msg); err != nil {
		return res, fmt.Errorf("transport: submit: %w", err)
	}
	return res, nil
}

// Run pumps server messages until the connection closes or Close is
// called, invoking OnCommit/OnDrop as resolutions arrive. It returns nil
// on orderly shutdown.
func (c *Client) Run() error {
	for {
		msg, err := wire.ReadFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("transport: read: %w", err)
		}
		c.mu.Lock()
		out := c.engine.HandleMsg(msg)
		c.mu.Unlock()
		if len(out.ToServer) > 0 {
			// One batch can resolve many actions; coalesce the resulting
			// completion frames into a single pooled write.
			buf := wire.GetBuf(64)
			for _, m := range out.ToServer {
				buf = wire.AppendFrame(buf, m)
			}
			_, err := c.conn.Write(buf)
			wire.PutBuf(buf)
			if err != nil {
				return fmt.Errorf("transport: completion write: %w", err)
			}
		}
		for _, cm := range out.Commits {
			if c.OnCommit != nil {
				c.OnCommit(cm)
			}
		}
		for _, id := range out.DroppedLocal {
			if c.OnDrop != nil {
				c.OnDrop(id)
			}
		}
		if len(out.Violations) > 0 {
			return fmt.Errorf("transport: protocol violation: %s", out.Violations[0])
		}
	}
}

// Close shuts the connection down; a concurrent Run returns nil.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
