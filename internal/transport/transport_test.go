package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/durable"
	"seve/internal/manhattan"
	"seve/internal/world"
)

var registerOnce sync.Once

// testWorld builds the shared workload world and registers the move
// decoder (once per process; the wire registry is global).
func testWorld() *manhattan.World {
	cfg := manhattan.DefaultConfig()
	cfg.Width, cfg.Height = 200, 200
	cfg.NumWalls = 200
	cfg.NumAvatars = 4
	cfg.Seed = 11
	w := manhattan.NewWorld(cfg)
	registerOnce.Do(func() { manhattan.RegisterWire(w) })
	return w
}

func protocolConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncomplete // deterministic: no timing-dependent pushes
	cfg.Strict = true
	return cfg
}

// TestEndToEndTCP runs a real server and three real clients over
// loopback TCP: every submitted move must commit, and the server must
// install every action.
func TestEndToEndTCP(t *testing.T) {
	w := testWorld()
	init := w.InitialState(0)
	cfg := protocolConfig()

	srv := NewServer(ServerConfig{Core: cfg, Init: init, Logf: t.Logf})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		l.Close()
		<-serveDone
	}()

	const clients = 3
	const movesPer = 5

	var wg sync.WaitGroup
	commitCounts := make([]int, clients)
	errs := make(chan error, clients*2)

	for ci := 0; ci < clients; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(l.Addr().String(), cfg, 0)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()

			committed := make(chan core.Commit, movesPer)
			cl.OnCommit = func(c core.Commit) { committed <- c }
			runDone := make(chan error, 1)
			go func() { runDone <- cl.Run() }()

			avatar := manhattan.AvatarID(int(cl.ID()))
			for m := 0; m < movesPer; m++ {
				var mv *manhattan.MoveAction
				cl.Engine(func(e *core.Client) {
					mv, err = w.NewMove(e.NextActionID(), avatar, e.Optimistic())
				})
				if err != nil {
					errs <- err
					return
				}
				if _, err := cl.Submit(mv); err != nil {
					errs <- err
					return
				}
				// Wait for the commit before the next move, bounding
				// in-flight actions for a deterministic test.
				select {
				case <-committed:
					commitCounts[ci]++
				case <-time.After(10 * time.Second):
					errs <- timeoutErr{}
					return
				}
			}
			cl.Close()
			if err := <-runDone; err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for ci, n := range commitCounts {
		if n != movesPer {
			t.Fatalf("client %d committed %d of %d moves", ci, n, movesPer)
		}
	}
	// All completions may still be in flight; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Installed() != clients*movesPer && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Installed(); got != clients*movesPer {
		t.Fatalf("server installed %d of %d actions", got, clients*movesPer)
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string { return "timed out waiting for commit" }

// TestDialRejectsNonServer verifies the handshake fails cleanly against
// a listener that closes immediately.
func TestDialRejectsNonServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	if _, err := Dial(l.Addr().String(), protocolConfig(), 0); err == nil {
		t.Fatal("dial against closing peer succeeded")
	}
}

// TestServerSurvivesClientDisconnect: a client that joins, submits, and
// vanishes must not wedge the server for others.
func TestServerSurvivesClientDisconnect(t *testing.T) {
	w := testWorld()
	init := w.InitialState(0)
	cfg := protocolConfig()
	// Failure tolerance lets the survivor complete the deserter's action.
	cfg.FailureTolerant = true

	srv := NewServer(ServerConfig{Core: cfg, Init: init})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		l.Close()
		<-serveDone
	}()

	// Deserter joins and vanishes without completing anything.
	deserter, err := Dial(l.Addr().String(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	avatarD := manhattan.AvatarID(int(deserter.ID()))
	var mv *manhattan.MoveAction
	deserter.Engine(func(e *core.Client) {
		mv, err = w.NewMove(e.NextActionID(), avatarD, e.Optimistic())
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deserter.Submit(mv); err != nil {
		t.Fatal(err)
	}
	deserter.Close() // never reads the reply, never completes

	// Survivor joins and works; its avatar is adjacent in id space but
	// the world is sparse, so its moves are independent — they must
	// commit regardless of the deserter's unfinished action.
	survivor, err := Dial(l.Addr().String(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	committed := make(chan core.Commit, 4)
	survivor.OnCommit = func(c core.Commit) { committed <- c }
	go func() { _ = survivor.Run() }()

	avatarS := manhattan.AvatarID(int(survivor.ID()))
	for m := 0; m < 3; m++ {
		var smv *manhattan.MoveAction
		survivor.Engine(func(e *core.Client) {
			smv, err = w.NewMove(e.NextActionID(), avatarS, e.Optimistic())
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := survivor.Submit(smv); err != nil {
			t.Fatal(err)
		}
		select {
		case <-committed:
		case <-time.After(10 * time.Second):
			t.Fatal("survivor commit timed out after deserter left")
		}
	}
	_ = action.OriginServer
	_ = world.ObjectID(0)
}

// TestDurableServerRecovers: a server journaling to disk is stopped,
// its world recovered, and a second server constructed over the
// recovery resumes at the same install point and keeps serving.
func TestDurableServerRecovers(t *testing.T) {
	w := testWorld()
	init := w.InitialState(0)
	cfg := protocolConfig()

	dir := t.TempDir()
	store, recovery, err := durable.Open(dir, init, durable.Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{Core: cfg, Init: init, Durable: store, Recovery: recovery})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	cl, err := Dial(l.Addr().String(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	committed := make(chan core.Commit, 8)
	cl.OnCommit = func(c core.Commit) { committed <- c }
	go func() { _ = cl.Run() }()

	avatar := manhattan.AvatarID(int(cl.ID()))
	const moves = 7
	for m := 0; m < moves; m++ {
		var mv *manhattan.MoveAction
		cl.Engine(func(e *core.Client) {
			mv, err = w.NewMove(e.NextActionID(), avatar, e.Optimistic())
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Submit(mv); err != nil {
			t.Fatal(err)
		}
		select {
		case <-committed:
		case <-time.After(10 * time.Second):
			t.Fatal("commit timeout")
		}
	}
	// Let the completion for the last move reach the server.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Installed() != moves && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Installed() != moves {
		t.Fatalf("installed %d of %d", srv.Installed(), moves)
	}
	var want world.Value
	cl.Engine(func(e *core.Client) {
		v, _ := e.Stable().Get(avatar)
		want = v.Clone()
	})
	cl.Close()
	srv.Close()
	l.Close()
	<-serveDone
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	store.Close()

	// Recover from disk: the avatar is where the client left it.
	store2, rec2, err := durable.Open(dir, init, durable.Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Restore.UpTo != moves {
		t.Fatalf("recovered up to %d, want %d", rec2.Restore.UpTo, moves)
	}
	gv, ok := rec2.State.Get(avatar)
	if !ok || !gv.Equal(want) {
		t.Fatalf("recovered avatar = %v, want %v", gv, want)
	}

	// Crash-restart = resume: a fresh server over the recovery starts
	// at the durable install point and keeps committing past it.
	srv2 := NewServer(ServerConfig{Core: cfg, Init: init, Durable: store2, Recovery: rec2})
	if srv2.Installed() != moves {
		t.Fatalf("restarted server installed = %d, want %d", srv2.Installed(), moves)
	}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone2 := make(chan error, 1)
	go func() { serveDone2 <- srv2.Serve(l2) }()
	cl2, err := Dial(l2.Addr().String(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	committed2 := make(chan core.Commit, 4)
	cl2.OnCommit = func(c core.Commit) { committed2 <- c }
	go func() { _ = cl2.Run() }()
	avatar2 := manhattan.AvatarID(int(cl2.ID()))
	var mv2 *manhattan.MoveAction
	cl2.Engine(func(e *core.Client) {
		mv2, err = w.NewMove(e.NextActionID(), avatar2, e.Optimistic())
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Submit(mv2); err != nil {
		t.Fatal(err)
	}
	select {
	case <-committed2:
	case <-time.After(10 * time.Second):
		t.Fatal("restarted server never committed")
	}
	deadline = time.Now().Add(5 * time.Second)
	for srv2.Installed() != moves+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv2.Installed() != moves+1 {
		t.Fatalf("restarted server installed %d, want %d", srv2.Installed(), moves+1)
	}
	cl2.Close()
	srv2.Close()
	l2.Close()
	<-serveDone2
	store2.Close()
}
