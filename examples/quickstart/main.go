// Quickstart: the smallest complete SEVE program.
//
// It defines a one-object "counter" world and a custom Increment action,
// wires one server and two client engines together in-process, and walks
// through the protocol: optimistic evaluation, server serialization,
// stable commit, and reconciliation when two clients race.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"math"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/wire"
	"seve/internal/world"
)

// counterID is the single shared object.
const counterID world.ObjectID = 1

// Increment is a minimal action: read the counter, add Delta, write it
// back. Because the written value depends on the read value, two
// concurrent increments conflict — the case the action-based protocol
// resolves without locks and in one round trip.
type Increment struct {
	id    action.ID
	Delta float64
}

func (a *Increment) ID() action.ID         { return a.id }
func (a *Increment) Kind() action.Kind     { return 100 }
func (a *Increment) ReadSet() world.IDSet  { return world.NewIDSet(counterID) }
func (a *Increment) WriteSet() world.IDSet { return world.NewIDSet(counterID) }

func (a *Increment) Apply(tx *world.Tx) bool {
	v, ok := tx.Read(counterID)
	if !ok {
		return false // fatal conflict: abort as a no-op
	}
	tx.Write(counterID, world.Value{v[0] + a.Delta})
	return true
}

func (a *Increment) MarshalBody() []byte {
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(a.Delta))
}

func main() {
	// The world starts with the counter at zero.
	init := world.NewState()
	init.Set(counterID, world.Value{0})

	// Protocol level: the Incomplete World Model (Algorithms 4-6).
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncomplete

	server := core.NewServer(cfg, init)
	alice := core.NewClient(1, cfg, init)
	bob := core.NewClient(2, cfg, init)
	server.RegisterClient(1, 0)
	server.RegisterClient(2, 0)

	// deliver shuttles one client message to the server and the server's
	// replies back — in production this is TCP (internal/transport) or
	// the network simulator (internal/experiments).
	deliver := func(c *core.Client, msg wire.Msg) {
		out := server.HandleMsg(c.ID(), msg, 0)
		for _, rep := range out.Replies {
			target := alice
			if rep.To == 2 {
				target = bob
			}
			cout := target.HandleMsg(rep.Msg)
			for _, m := range cout.ToServer {
				server.HandleMsg(target.ID(), m, 0)
			}
			for _, commit := range cout.Commits {
				status := "committed"
				if commit.Reconciled {
					status = "committed (after reconciliation)"
				}
				fmt.Printf("  client %d: action %v %s at position %d → counter %v\n",
					target.ID(), commit.ActID, status, commit.Seq, commit.Res.Writes[0].Val)
			}
		}
	}

	fmt.Println("1. Alice optimistically adds 10, Bob concurrently adds 100.")
	aMsg, aOpt := alice.Submit(&Increment{id: alice.NextActionID(), Delta: 10})
	bMsg, bOpt := bob.Submit(&Increment{id: bob.NextActionID(), Delta: 100})
	fmt.Printf("  Alice's optimistic view: %v (instant feedback)\n", aOpt.Writes[0].Val)
	fmt.Printf("  Bob's optimistic view:   %v — stale! He hasn't seen Alice's action\n", bOpt.Writes[0].Val)

	fmt.Println("2. The server serializes both; stable evaluations replace guesses.")
	deliver(alice, aMsg)
	deliver(bob, bMsg)

	av, _ := alice.Optimistic().Get(counterID)
	bv, _ := bob.Optimistic().Get(counterID)
	sv, _ := server.Authoritative().Get(counterID)
	fmt.Println("3. The world is 'incomplete' by design:")
	fmt.Printf("  Alice still sees %v — nothing she did depended on Bob's action,\n", av)
	fmt.Printf("  so the server never sent it to her (that is the scalability win).\n")
	fmt.Printf("  Bob sees %v, the authoritative state ζS holds %v.\n", bv, sv)
	if bv[0] != 110 || sv[0] != 110 {
		panic("quickstart: states diverged")
	}

	fmt.Println("4. The moment Alice touches the counter again, the transitive")
	fmt.Println("   closure (Algorithm 6) ships her everything she needs:")
	aMsg2, _ := alice.Submit(&Increment{id: alice.NextActionID(), Delta: 1})
	deliver(alice, aMsg2)
	av, _ = alice.Optimistic().Get(counterID)
	fmt.Printf("  Alice now sees %v.\n", av)
	if av[0] != 111 {
		panic("quickstart: Alice failed to converge")
	}
}
