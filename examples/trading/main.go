// Trading: the paper's Section I warning, staged.
//
// "In practice, [inconsistency] can easily cause much more serious
// problems, like objects being lost or duplicated during a financial
// transaction."
//
// One seller, one sword, two buyers who both try to buy it in the same
// instant. Under a visibility-filtered architecture the two buyers stand
// far apart, never hear each other's purchase, and BOTH end up owning
// the sword — a duplication exploit. Under SEVE the two trades are
// serialized; the first commits, the second detects the conflict and
// aborts as a no-op, and gold + items are conserved on every replica.
//
// Run with:
//
//	go run ./examples/trading
package main

import (
	"encoding/binary"
	"fmt"

	"seve/internal/action"
	"seve/internal/baseline"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/world"
)

// Objects: each participant is [gold, x, y]; the sword is [ownerID].
const (
	sellerObj world.ObjectID = 1
	buyerAObj world.ObjectID = 2
	buyerBObj world.ObjectID = 3
	swordObj  world.ObjectID = 4
)

const swordPrice = 50

// BuySword atomically pays the seller and takes ownership — if and only
// if the seller still owns the sword.
type BuySword struct {
	id    action.ID
	Buyer world.ObjectID
	At    geom.Vec
}

func (a *BuySword) ID() action.ID     { return a.id }
func (a *BuySword) Kind() action.Kind { return 400 }

func (a *BuySword) ReadSet() world.IDSet {
	return world.NewIDSet(sellerObj, a.Buyer, swordObj)
}
func (a *BuySword) WriteSet() world.IDSet { return a.ReadSet() }

func (a *BuySword) Apply(tx *world.Tx) bool {
	sword, ok1 := tx.Read(swordObj)
	buyer, ok2 := tx.Read(a.Buyer)
	seller, ok3 := tx.Read(sellerObj)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	if world.ObjectID(sword[0]) != sellerObj {
		return false // already sold: abort, no payment
	}
	if buyer[0] < swordPrice {
		return false // cannot afford it
	}
	nb, ns := buyer.Clone(), seller.Clone()
	nb[0] -= swordPrice
	ns[0] += swordPrice
	tx.Write(a.Buyer, nb)
	tx.Write(sellerObj, ns)
	tx.Write(swordObj, world.Value{float64(a.Buyer)})
	return true
}

func (a *BuySword) MarshalBody() []byte {
	return binary.LittleEndian.AppendUint64(nil, uint64(a.Buyer))
}

// Influence is the buyer's stall position — what a visibility filter
// would use to decide who needs to hear about the purchase.
func (a *BuySword) Influence() geom.Circle { return geom.Circle{Center: a.At, R: 5} }

// Browse is a harmless spatial action — looking at a market stall — that
// registers the actor's position with the visibility filter.
type Browse struct {
	id   action.ID
	Self world.ObjectID
	At   geom.Vec
}

func (a *Browse) ID() action.ID          { return a.id }
func (a *Browse) Kind() action.Kind      { return 401 }
func (a *Browse) ReadSet() world.IDSet   { return world.NewIDSet(a.Self) }
func (a *Browse) WriteSet() world.IDSet  { return world.NewIDSet(a.Self) }
func (a *Browse) MarshalBody() []byte    { return nil }
func (a *Browse) Influence() geom.Circle { return geom.Circle{Center: a.At, R: 5} }

func (a *Browse) Apply(tx *world.Tx) bool {
	v, ok := tx.Read(a.Self)
	if !ok {
		return false
	}
	tx.Write(a.Self, v.Clone())
	return true
}

func market() *world.State {
	init := world.NewState()
	init.Set(sellerObj, world.Value{0, 250, 250})
	init.Set(buyerAObj, world.Value{100, 0, 0})
	init.Set(buyerBObj, world.Value{100, 500, 500})
	init.Set(swordObj, world.Value{float64(sellerObj)})
	return init
}

// owners reports who owns the sword according to each replica, plus the
// total gold each replica believes exists.
func audit(name string, views map[string]world.Reader) (swordCopies int) {
	fmt.Printf("%s:\n", name)
	ownersSeen := map[world.ObjectID]bool{}
	for who, v := range views {
		sword, _ := v.Get(swordObj)
		owner := world.ObjectID(sword[0])
		gold := 0.0
		for _, id := range []world.ObjectID{sellerObj, buyerAObj, buyerBObj} {
			g, _ := v.Get(id)
			gold += g[0]
		}
		fmt.Printf("  %-8s believes: sword owned by object %d, total gold %.0f\n", who, owner, gold)
		ownersSeen[owner] = true
	}
	return len(ownersSeen)
}

func main() {
	fmt.Println("One sword, two buyers, one instant. Price 50 gold.")
	fmt.Println()

	ringOwners := runRing()
	seveOwners := runSEVE()

	fmt.Println()
	if ringOwners > 1 {
		fmt.Printf("Visibility filter: replicas disagree on the owner — the sword was\n")
		fmt.Printf("effectively DUPLICATED (%d distinct 'owners').\n", ringOwners)
	}
	if seveOwners == 1 {
		fmt.Println("SEVE: exactly one owner everywhere; the losing trade aborted and")
		fmt.Println("paid nothing. Gold and items conserved.")
	}
	if ringOwners <= 1 {
		panic("trading: the naive architecture failed to duplicate the sword")
	}
	if seveOwners != 1 {
		panic("trading: SEVE replicas disagree on ownership")
	}
}

// runRing lets the two distant buyers trade through a visibility filter
// that hides their purchases from each other.
func runRing() int {
	init := market()
	srv := baseline.NewRingServer(50, false)
	cfg := baseline.NewRingClientConfig()
	buyerA := core.NewClient(1, cfg, init)
	buyerB := core.NewClient(2, cfg, init)
	srv.RegisterClient(1)
	srv.RegisterClient(2)
	clients := map[action.ClientID]*core.Client{1: buyerA, 2: buyerB}

	send := func(c *core.Client, a action.Action) {
		msg, _ := c.Submit(a)
		out := srv.HandleSubmit(c.ID(), msg)
		for _, rep := range out.Replies {
			clients[rep.To].HandleMsg(rep.Msg)
		}
	}
	// Register the buyers' distant stall positions first (a client with
	// an unknown position is conservatively treated as visible).
	send(buyerA, &Browse{id: buyerA.NextActionID(), Self: buyerAObj, At: geom.Vec{X: 0, Y: 0}})
	send(buyerB, &Browse{id: buyerB.NextActionID(), Self: buyerBObj, At: geom.Vec{X: 500, Y: 500}})

	// Now the race: each purchase is 700 units from the other buyer, so
	// the filter hides it — and both replicas hand over the sword.
	send(buyerA, &BuySword{id: buyerA.NextActionID(), Buyer: buyerAObj, At: geom.Vec{X: 0, Y: 0}})
	send(buyerB, &BuySword{id: buyerB.NextActionID(), Buyer: buyerBObj, At: geom.Vec{X: 500, Y: 500}})

	return audit("Visibility-filtered replicas", map[string]world.Reader{
		"buyer A": buyerA.Stable(),
		"buyer B": buyerB.Stable(),
	})
}

// runSEVE serializes the same race through the Incomplete World Model.
func runSEVE() int {
	init := market()
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncomplete
	srv := core.NewServer(cfg, init)
	buyerA := core.NewClient(1, cfg, init)
	buyerB := core.NewClient(2, cfg, init)
	srv.RegisterClient(1, 0)
	srv.RegisterClient(2, 0)
	clients := map[action.ClientID]*core.Client{1: buyerA, 2: buyerB}

	// Both submit before the server sees either: a true race.
	mA, _ := buyerA.Submit(&BuySword{id: buyerA.NextActionID(), Buyer: buyerAObj, At: geom.Vec{X: 0, Y: 0}})
	mB, _ := buyerB.Submit(&BuySword{id: buyerB.NextActionID(), Buyer: buyerBObj, At: geom.Vec{X: 500, Y: 500}})

	var replies []core.Reply
	out := srv.HandleMsg(1, mA, 0)
	replies = append(replies, out.Replies...)
	out = srv.HandleMsg(2, mB, 0)
	replies = append(replies, out.Replies...)
	for _, rep := range replies {
		cout := clients[rep.To].HandleMsg(rep.Msg)
		for _, m := range cout.ToServer {
			srv.HandleMsg(rep.To, m, 0)
		}
		for _, cm := range cout.Commits {
			status := "committed"
			if !cm.Res.OK {
				status = "aborted (sword already sold)"
			}
			fmt.Printf("  SEVE: buyer %d's trade %s\n", rep.To, status)
		}
	}
	return audit("SEVE replicas", map[string]world.Reader{
		"buyer A": buyerA.Stable(),
		"buyer B": buyerB.Stable(),
		"server":  srv.Authoritative(),
	})
}
