// Interest classes: the Section IV-A optimization, staged with the
// paper's own menagerie.
//
// "Suppose that a net-VE contains humans and insects. A participant who
// is pretending to be an insect in the VE would probably need to
// consistently know the location of other insects and of the humans.
// However, a participant who is acting as a human in the VE may not need
// to reliably know the locations of all of the insects. We can therefore
// extend the system so as to allow the clients to specify exactly what
// kind of actions and information they are interested in."
//
// A human and an insect both buzz around the same clearing. With
// interest filtering on, the human's client never receives the insect's
// wing-beats as pushes — while the insect still tracks the human's every
// step, and closure replies (which carry consistency, not curiosity)
// remain unfiltered.
//
// Run with:
//
//	go run ./examples/interest
package main

import (
	"fmt"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

// Interest classes.
const (
	classHuman  = 1
	classInsect = 2
)

// Buzz is a tiny spatial action: the creature twitches, writing its own
// tuple, tagged with its species' interest class.
type Buzz struct {
	id    action.ID
	Self  world.ObjectID
	Class uint8
	At    geom.Vec
}

func (a *Buzz) ID() action.ID          { return a.id }
func (a *Buzz) Kind() action.Kind      { return 500 }
func (a *Buzz) ReadSet() world.IDSet   { return world.NewIDSet(a.Self) }
func (a *Buzz) WriteSet() world.IDSet  { return world.NewIDSet(a.Self) }
func (a *Buzz) MarshalBody() []byte    { return nil }
func (a *Buzz) Influence() geom.Circle { return geom.Circle{Center: a.At, R: 5} }
func (a *Buzz) InterestClass() uint8   { return a.Class }

func (a *Buzz) Apply(tx *world.Tx) bool {
	v, ok := tx.Read(a.Self)
	if !ok {
		return false
	}
	nv := v.Clone()
	nv[0]++ // twitch counter
	tx.Write(a.Self, nv)
	return true
}

func main() {
	init := world.NewState()
	init.Set(1, world.Value{0}) // the human
	init.Set(2, world.Value{0}) // the insect

	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeFirstBound
	cfg.InterestFilter = true
	cfg.MaxSpeed = 0 // keep Equation (1) spheres tight for the demo
	now := 10.0

	srv := core.NewServer(cfg, init)
	human := core.NewClient(1, cfg, init)
	insect := core.NewClient(2, cfg, init)
	// The human subscribes only to human-class actions; the insect to
	// both species (it must dodge feet).
	srv.RegisterClient(1, 1<<classHuman)
	srv.RegisterClient(2, (1<<classHuman)|(1<<classInsect))
	clients := map[action.ClientID]*core.Client{1: human, 2: insect}

	// Completion messages are held in flight until after each push tick,
	// as they would be on a real 476 ms round trip — otherwise every
	// action installs before the push cycle sees it.
	type inflight struct {
		from action.ClientID
		msg  wire.Msg
	}
	var completions []inflight
	deliver := func(out core.ServerOutput) {
		for _, rep := range out.Replies {
			cout := clients[rep.To].HandleMsg(rep.Msg)
			for _, m := range cout.ToServer {
				completions = append(completions, inflight{rep.To, m})
			}
		}
	}
	flushCompletions := func() {
		for _, c := range completions {
			srv.HandleMsg(c.from, c.msg, now)
		}
		completions = completions[:0]
	}

	// Both creatures announce their positions, side by side.
	submit := func(c *core.Client, self world.ObjectID, class uint8) {
		b := &Buzz{id: c.NextActionID(), Self: self, Class: class, At: geom.Vec{X: float64(self), Y: 0}}
		msg, _ := c.Submit(b)
		deliver(srv.HandleMsg(c.ID(), msg, now))
	}
	submit(human, 1, classHuman)
	submit(insect, 2, classInsect)

	// A busy minute in the clearing: the insect buzzes constantly, the
	// human takes a few steps; the server pushes every ω·RTT.
	for round := 0; round < 10; round++ {
		now += 10
		submit(insect, 2, classInsect)
		if round%3 == 0 {
			submit(human, 1, classHuman)
		}
		now += cfg.PushIntervalMs()
		deliver(srv.Tick(now))
		flushCompletions()
	}

	fmt.Println("After a busy minute in the clearing:")
	fmt.Printf("  the human's client evaluated %d remote actions (insect buzzes filtered)\n",
		human.AppliedRemote())
	fmt.Printf("  the insect's client evaluated %d remote actions (it tracks the human)\n",
		insect.AppliedRemote())
	if human.AppliedRemote() != 0 {
		panic("interest: insect buzzes leaked through the human's filter")
	}
	if insect.AppliedRemote() == 0 {
		panic("interest: the insect never saw the human move")
	}
	fmt.Println()
	fmt.Println("Same world, same consistency guarantees — the human just stopped")
	fmt.Println("paying bandwidth and compute for wing-beats it will never act on.")
	_ = wire.TypeBatch
}
