// Dining philosophers on the equator: the paper's Section III-E
// unbounded-transitive-closure example.
//
// "Consider a scenario with n participants, with each of them trying to
// grab two forks — one to their left and one to their right. Let them be
// organized in the form of a circular ring located on earth's equator.
// If each of them tries to pick up the two forks at the same tick, then
// although the direct conflicts never involve more than two
// participants, a transitive closure of conflicts encompasses the
// entire world."
//
// This example submits all n grabs in the same instant and shows (a) the
// transitive conflict chain really does wrap the ring, and (b) the
// Information Bound Model (Algorithm 7) breaks it by dropping a few
// grabs — not all of them — so the rest commit with bounded closures.
//
// Run with:
//
//	go run ./examples/philosophers
package main

import (
	"fmt"
	"math"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

const n = 30 // philosophers (and forks)

// ringRadius puts neighbours ~40 units apart, comfortably inside the
// 150-unit chain-breaking threshold while the ring spans 380 units.
const ringRadius = 190.0

// GrabForks atomically claims both adjacent forks if free, marking them
// with the philosopher's number. If either is taken it aborts.
type GrabForks struct {
	id          action.ID
	Philosopher int
	pos         geom.Vec
}

func forkID(i int) world.ObjectID { return world.ObjectID(i%n + 1) }

func (g *GrabForks) left() world.ObjectID  { return forkID(g.Philosopher - 1) }
func (g *GrabForks) right() world.ObjectID { return forkID(g.Philosopher) }

func (g *GrabForks) ID() action.ID     { return g.id }
func (g *GrabForks) Kind() action.Kind { return 300 }

func (g *GrabForks) ReadSet() world.IDSet {
	return world.NewIDSet(g.left(), g.right())
}

func (g *GrabForks) WriteSet() world.IDSet { return g.ReadSet() }

func (g *GrabForks) Apply(tx *world.Tx) bool {
	l, okL := tx.Read(g.left())
	r, okR := tx.Read(g.right())
	if !okL || !okR {
		return false
	}
	if l[0] != 0 || r[0] != 0 {
		return false // a neighbour got there first: abort, stay hungry
	}
	holder := world.Value{float64(g.Philosopher)}
	tx.Write(g.left(), holder)
	tx.Write(g.right(), holder)
	return true
}

func (g *GrabForks) MarshalBody() []byte { return nil }

// Influence places the grab at the philosopher's seat on the ring.
func (g *GrabForks) Influence() geom.Circle {
	return geom.Circle{Center: g.pos, R: 5}
}

func seat(i int) geom.Vec {
	ang := 2 * math.Pi * float64(i) / n
	return geom.Vec{X: ringRadius * math.Cos(ang), Y: ringRadius * math.Sin(ang)}
}

func main() {
	init := world.NewState()
	for i := 1; i <= n; i++ {
		init.Set(world.ObjectID(i), world.Value{0}) // fork i is free
	}

	fmt.Printf("%d philosophers grab their forks in the same instant.\n\n", n)

	// First, measure the chain with the Information Bound disabled.
	chainLen := measureChain(init)
	fmt.Printf("Without chain breaking, one grab's transitive conflict chain\n")
	fmt.Printf("contains %d of the %d other grabs — it wraps the whole ring.\n\n", chainLen, n-1)

	// Now run the full Information Bound Model.
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeInfoBound
	cfg.Threshold = 150

	srv := core.NewServer(cfg, init)
	clients := make(map[action.ClientID]*core.Client, n)
	for i := 1; i <= n; i++ {
		cid := action.ClientID(i)
		clients[cid] = core.NewClient(cid, cfg, init)
		srv.RegisterClient(cid, 0)
	}

	// Everyone submits before the server sees anything: "the same tick".
	type inflight struct {
		cid action.ClientID
		msg wire.Msg
	}
	var queue []inflight
	for i := 1; i <= n; i++ {
		cid := action.ClientID(i)
		grab := &GrabForks{id: clients[cid].NextActionID(), Philosopher: i, pos: seat(i)}
		msg, _ := clients[cid].Submit(grab)
		queue = append(queue, inflight{cid, msg})
	}

	// All submissions reach the server before any reply is processed —
	// the "same tick" of the thought experiment.
	var replies []core.Reply
	for _, inf := range queue {
		out := srv.HandleMsg(inf.cid, inf.msg, 0)
		replies = append(replies, out.Replies...)
	}

	ate, starved, dropped := 0, 0, 0
	for _, rep := range replies {
		cout := clients[rep.To].HandleMsg(rep.Msg)
		for _, m := range cout.ToServer {
			srv.HandleMsg(rep.To, m, 0)
		}
		for _, c := range cout.Commits {
			if c.Res.OK {
				ate++
			} else {
				starved++ // lost the forks to a neighbour
			}
		}
		dropped += len(cout.DroppedLocal)
	}

	fmt.Printf("With the Information Bound Model (threshold %.0f units):\n", cfg.Threshold)
	fmt.Printf("  %d philosophers got both forks\n", ate)
	fmt.Printf("  %d found a fork already taken (conflict abort)\n", starved)
	fmt.Printf("  %d grabs dropped to break the ring-spanning chain\n", dropped)
	if dropped == 0 {
		panic("philosophers: the ring chain was never broken")
	}
	if dropped >= n/2 {
		panic("philosophers: chain breaking dropped half the table")
	}
	if ate == 0 {
		panic("philosophers: nobody ate")
	}
	fmt.Printf("\nDropping %d of %d grabs (%.0f%%) bounded every closure — the paper's\n",
		dropped, n, 100*float64(dropped)/n)
	fmt.Println("point: break long chains by dropping a few actions, not by deciding.")
}

// measureChain stamps all n grabs into an incomplete-world server queue
// (no dropping) and reports the transitive chain length seen by the last
// philosopher's grab.
func measureChain(init *world.State) int {
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncomplete
	srv := core.NewServer(cfg, init)
	clients := make(map[action.ClientID]*core.Client, n)
	for i := 1; i <= n; i++ {
		cid := action.ClientID(i)
		clients[cid] = core.NewClient(cid, cfg, init)
		srv.RegisterClient(cid, 0)
	}
	for i := 1; i <= n-1; i++ {
		cid := action.ClientID(i)
		grab := &GrabForks{id: clients[cid].NextActionID(), Philosopher: i, pos: seat(i)}
		msg, _ := clients[cid].Submit(grab)
		srv.HandleMsg(cid, msg, 0) // stamp; never complete — all stay queued
	}
	last := &GrabForks{Philosopher: n, pos: seat(n)}
	return srv.ChainLength(last.ReadSet())
}
