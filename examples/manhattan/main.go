// Manhattan People: the paper's full evaluation workload (Section V-A2),
// run through the discrete-event simulator under all four architectures
// so the scalability story is visible in one screen of output.
//
// 48 clients walk a 1000×1000 world with 20 000 walls at the paper's
// Table I parameters (238 ms latency, 100 Kbps links, one move per
// 300 ms, per-move cost pinned to the measured 7.44 ms). Compare the
// response-time and traffic columns: the Central server and the
// Broadcast clients saturate (48 × 7.44 ms > 300 ms), SEVE stays at one
// round trip, and RING matches SEVE's speed but diverges from the true
// world state.
//
// Run with:
//
//	go run ./examples/manhattan
package main

import (
	"fmt"
	"log"

	"seve/internal/experiments"
	"seve/internal/metrics"
)

func main() {
	const clients = 48
	archs := []experiments.Arch{
		experiments.ArchCentral,
		experiments.ArchBroadcast,
		experiments.ArchRing,
		experiments.ArchSEVE,
	}

	table := metrics.Table{
		Title: fmt.Sprintf("Manhattan People, %d clients, 100k-wall cost calibration (7.44 ms/move)", clients),
		Header: []string{
			"architecture", "mean-resp-ms", "p95-resp-ms",
			"traffic-kb", "server-busy-ms", "busiest-client-ms",
			"dropped", "divergent-objects",
		},
	}

	for _, arch := range archs {
		rc := experiments.DefaultRunConfig(arch, clients)
		rc.MovesPerClient = 50
		rc.World.NumWalls = 20_000
		// Pin the paper's measured per-move cost directly.
		rc.World.BaseCostMs = 7.44
		rc.World.PerWallCostMs = 0
		rc.SlackMs = 40_000
		res, err := experiments.Run(rc)
		if err != nil {
			log.Fatalf("manhattan: %s: %v", arch, err)
		}
		table.AddRow(
			arch.String(),
			metrics.Ms(res.Response.Mean()),
			metrics.Ms(res.Response.Percentile(95)),
			metrics.KB(res.TotalBytes),
			metrics.Ms(res.ServerBusyMs),
			metrics.Ms(res.MaxClientBusyMs),
			fmt.Sprintf("%d", res.Dropped),
			fmt.Sprintf("%d", res.Divergence),
		)
	}
	fmt.Println(table.String())
	fmt.Println("Reading the table:")
	fmt.Println("  - Central: all compute lands on the server (server-busy-ms) and its")
	fmt.Println("    queue explodes — the Figure 6 breakdown past ~32 clients.")
	fmt.Println("  - Broadcast: every client does the server's work (busiest-client-ms)")
	fmt.Println("    and traffic is quadratic.")
	fmt.Println("  - RING: fast, but divergent-objects > 0 — replicas silently disagree.")
	fmt.Println("  - SEVE: one-round-trip responses, near-central traffic, zero divergence.")
}
