// Scrying: the paper's Section I motivating example.
//
// "A classic feature for such a game is a 'scrying spell' that allows a
// healer to identify and heal the most wounded ally in a crowd. During
// combat, the result of this spell transaction interacts with all the
// other users, as the health of each player is continually changing.
// The range and nature of such a spell makes character-visibility
// partitioning useless."
//
// This example stages exactly that: archers damage fighters from outside
// the healer's visibility, then the healer casts the scry-heal. Under a
// RING-like visibility filter the healer never hears about the arrows
// and heals the WRONG ally; under SEVE's Incomplete World Model the
// transitive closure (Algorithm 6) delivers the unseen attacks and the
// heal lands correctly — the same serialized world everywhere.
//
// Run with:
//
//	go run ./examples/scrying
package main

import (
	"encoding/binary"
	"fmt"

	"seve/internal/action"
	"seve/internal/baseline"
	"seve/internal/core"
	"seve/internal/geom"
	"seve/internal/wire"
	"seve/internal/world"
)

// Object layout: fighters 1..3 carry [health, x, y].
const (
	fighterA world.ObjectID = 1 // near the healer
	fighterB world.ObjectID = 2 // near the healer
	fighterC world.ObjectID = 3 // far across the battlefield
)

var fighterIDs = []world.ObjectID{fighterA, fighterB, fighterC}

// Shoot damages one fighter. Its influence is local to the target.
type Shoot struct {
	id     action.ID
	Target world.ObjectID
	Damage float64
	From   geom.Vec
}

func (a *Shoot) ID() action.ID         { return a.id }
func (a *Shoot) Kind() action.Kind     { return 200 }
func (a *Shoot) ReadSet() world.IDSet  { return world.NewIDSet(a.Target) }
func (a *Shoot) WriteSet() world.IDSet { return world.NewIDSet(a.Target) }

func (a *Shoot) Apply(tx *world.Tx) bool {
	v, ok := tx.Read(a.Target)
	if !ok {
		return false
	}
	nv := v.Clone()
	nv[0] -= a.Damage
	tx.Write(a.Target, nv)
	return true
}

func (a *Shoot) MarshalBody() []byte {
	buf := binary.LittleEndian.AppendUint64(nil, uint64(a.Target))
	return binary.LittleEndian.AppendUint64(buf, uint64(int64(a.Damage*100)))
}

// Influence makes the arrow spatially local — which is exactly why
// visibility filtering believes it can hide it from the healer.
func (a *Shoot) Influence() geom.Circle { return geom.Circle{Center: a.From, R: 5} }

// ScryHeal reads EVERY fighter's health and heals the most wounded one.
// Its read set spans the whole battlefield: no obstruction layer or
// visibility radius can capture its causal dependencies (Section III-B).
type ScryHeal struct {
	id     action.ID
	Amount float64
}

func (a *ScryHeal) ID() action.ID         { return a.id }
func (a *ScryHeal) Kind() action.Kind     { return 201 }
func (a *ScryHeal) ReadSet() world.IDSet  { return world.NewIDSet(fighterIDs...) }
func (a *ScryHeal) WriteSet() world.IDSet { return world.NewIDSet(fighterIDs...) }

func (a *ScryHeal) Apply(tx *world.Tx) bool {
	worst := world.ObjectID(0)
	worstHealth := 1e18
	for _, id := range fighterIDs {
		v, ok := tx.Read(id)
		if !ok {
			return false
		}
		if v[0] < worstHealth {
			worstHealth = v[0]
			worst = id
		}
	}
	v, _ := tx.Read(worst)
	nv := v.Clone()
	nv[0] += a.Amount
	tx.Write(worst, nv)
	return true
}

func (a *ScryHeal) MarshalBody() []byte { return nil }

// battlefield returns the initial world: A slightly hurt, B and C whole.
func battlefield() *world.State {
	init := world.NewState()
	init.Set(fighterA, world.Value{90, 10, 10})   // health 90, near healer
	init.Set(fighterB, world.Value{100, 15, 10})  // health 100, near healer
	init.Set(fighterC, world.Value{100, 500, 10}) // health 100, far away
	return init
}

func main() {
	fmt.Println("The battlefield: fighter A (health 90) and B (100) near the healer,")
	fmt.Println("fighter C (100) far across the map. Unseen archers fire at C.")
	fmt.Println()

	ringHealed := runRing()
	seveHealed := runSEVE()

	fmt.Println()
	fmt.Printf("RING-like visibility filter healed: fighter %v (wrong — C is at 40 health)\n", ringHealed)
	fmt.Printf("SEVE's transitive closure healed:   fighter %v (correct)\n", seveHealed)
	if ringHealed == fighterC {
		panic("scrying: visibility filter unexpectedly saw the arrows")
	}
	if seveHealed != fighterC {
		panic("scrying: SEVE healed the wrong fighter")
	}
}

// runRing plays the scenario through a visibility-filtered relay: the
// archer (client 2) is 500 units from the healer (client 1), far outside
// the 50-unit visibility, so the healer's replica never hears the shots.
func runRing() world.ObjectID {
	init := battlefield()
	srv := baseline.NewRingServer(50, false)
	cfg := baseline.NewRingClientConfig()
	healer := core.NewClient(1, cfg, init)
	archer := core.NewClient(2, cfg, init)
	srv.RegisterClient(1)
	srv.RegisterClient(2)
	clients := map[action.ClientID]*core.Client{1: healer, 2: archer}

	var lastCommit *core.Commit
	send := func(c *core.Client, a action.Action) {
		msg, _ := c.Submit(a)
		out := srv.HandleSubmit(c.ID(), msg)
		for _, rep := range out.Replies {
			cout := clients[rep.To].HandleMsg(rep.Msg)
			for i := range cout.Commits {
				lastCommit = &cout.Commits[i]
			}
		}
	}

	// Establish positions: healer acts near (10,10), archer near (500,10).
	send(healer, &Shoot{id: healer.NextActionID(), Target: fighterA, Damage: 0, From: geom.Vec{X: 10, Y: 10}})
	send(archer, &Shoot{id: archer.NextActionID(), Target: fighterC, Damage: 0, From: geom.Vec{X: 500, Y: 10}})

	// Three unseen arrows hit C: health 100 → 40.
	for i := 0; i < 3; i++ {
		send(archer, &Shoot{id: archer.NextActionID(), Target: fighterC, Damage: 20, From: geom.Vec{X: 500, Y: 10}})
	}

	// The healer scries. Its replica still believes C is at full health.
	send(healer, &ScryHeal{id: healer.NextActionID(), Amount: 50})

	dumpReplica("RING healer's replica after the scry", healer.Stable())
	// The scry's stable write record names whoever the healer healed.
	return lastCommit.Res.Writes[0].ID
}

// runSEVE plays the identical scenario through the Incomplete World
// Model: the scry's read set forces Algorithm 6 to ship the healer the
// arrows (and the blind write seeding C's true health).
func runSEVE() world.ObjectID {
	init := battlefield()
	cfg := core.DefaultConfig()
	cfg.Mode = core.ModeIncomplete
	srv := core.NewServer(cfg, init)
	healer := core.NewClient(1, cfg, init)
	archer := core.NewClient(2, cfg, init)
	srv.RegisterClient(1, 0)
	srv.RegisterClient(2, 0)
	clients := map[action.ClientID]*core.Client{1: healer, 2: archer}

	var lastCommit *core.Commit
	send := func(c *core.Client, a action.Action) {
		msg, _ := c.Submit(a)
		out := srv.HandleMsg(c.ID(), msg, 0)
		for _, rep := range out.Replies {
			cout := clients[rep.To].HandleMsg(rep.Msg)
			for _, m := range cout.ToServer {
				srv.HandleMsg(rep.To, m, 0)
			}
			for i := range cout.Commits {
				lastCommit = &cout.Commits[i]
			}
		}
	}

	for i := 0; i < 3; i++ {
		send(archer, &Shoot{id: archer.NextActionID(), Target: fighterC, Damage: 20, From: geom.Vec{X: 500, Y: 10}})
	}
	send(healer, &ScryHeal{id: healer.NextActionID(), Amount: 50})
	dumpReplica("SEVE healer's replica after the scry", healer.Stable())
	return lastCommit.Res.Writes[0].ID
}

// dumpReplica prints the fighters' health as one replica sees them.
func dumpReplica(title string, view *world.MVStore) {
	fmt.Printf("  %s:\n", title)
	for _, id := range fighterIDs {
		if cv, ok := view.Get(id); ok {
			fmt.Printf("    fighter %d: health %.0f\n", id, cv[0])
		}
	}
}

var _ wire.Msg = (*wire.Batch)(nil) // documentation pointer: see internal/wire
