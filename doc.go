// Package seve is a from-scratch Go implementation of SEVE — the
// Scalable Engine for Virtual Environments from "Scalability for Virtual
// Worlds" (Gupta, Demers, Gehrke, Unterbrunner, White; ICDE 2009) — plus
// every substrate its evaluation depends on: the action-based
// consistency protocols (Algorithms 1–7), the multiversion world-state
// database, the Central/Broadcast/RING baseline architectures, the
// Manhattan People workload, a deterministic discrete-event network
// simulator standing in for the paper's EMULab testbed, and a real TCP
// deployment.
//
// Start with README.md for the architecture tour, DESIGN.md for the
// paper-to-module map, and EXPERIMENTS.md for the reproduced evaluation.
// The library lives under internal/; the runnable entry points are
// cmd/seve-bench (regenerates every figure and table), cmd/seve-server
// and cmd/seve-client (real network deployment), and the programs under
// examples/.
package seve
