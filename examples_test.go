package seve_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end-to-end. Each example
// asserts its own invariants and panics on violation (non-zero exit), so
// a passing run is a behavioural check, not just a compile check.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn the go tool")
	}
	examples := []struct {
		pkg  string
		want string // a line the output must contain
	}{
		{"./examples/quickstart", "Alice now sees [111]"},
		{"./examples/scrying", "fighter 3 (correct)"},
		{"./examples/philosophers", "philosophers got both forks"},
		{"./examples/trading", "Gold and items conserved"},
		{"./examples/interest", "wing-beats"},
		{"./examples/manhattan", "SEVE"},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(strings.TrimPrefix(ex.pkg, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", ex.pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), ex.want) {
				t.Fatalf("output missing %q:\n%s", ex.want, out)
			}
		})
	}
}
