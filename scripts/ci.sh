#!/bin/sh
# CI gate: vet + the full test suite under the race detector.
# The engine's push scheduler fans closure planning over goroutines, so
# every change must pass -race, not just plain `go test`.
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go test -race ./...
