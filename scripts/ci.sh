#!/bin/sh
# CI gate: vet, the full test suite under the race detector, and a short
# fuzz smoke of the wire codec. The engine's push scheduler fans closure
# planning over goroutines, so every change must pass -race, not just
# plain `go test`; the fuzz pass keeps Decode honest against hostile
# frames beyond the checked-in corpus.
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go test -race ./...
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/wire
