#!/bin/sh
# CI gate: vet (generic + domain-specific), the full test suite under
# the race detector and again with shuffled test order, and a short fuzz
# smoke of the wire codec. The engine's push scheduler fans closure
# planning over goroutines and the shard router plans epochs on
# persistent lane workers, so every change must pass -race, not just
# plain `go test` — the -race run covers TestShardedEquivalence, the
# sharded-vs-single-lane byte-identity differential, and the netsim
# cheat-injection matrix (TestCheat*: every cheat class detected, zero
# false quarantines on honest churn, across shards × seeds);
# -shuffle=on keeps tests honest about shared state
# (the wire pool is process-global); seve-vet enforces the action
# read/write-set, pool-ownership, nocopy, determinism, lock-region,
# lane-affinity and delivery-class contracts (DESIGN.md §9, §14); the
# fuzz pass keeps Decode honest against hostile frames beyond the
# checked-in corpus; the coverage gate keeps the protocol engine and
# the reconnect-capable transport from losing test reach as they grow
# (baselines sit a little under the measured coverage so legitimate
# refactors don't trip on noise).
set -eu
cd "$(dirname "$0")/.."
go vet ./...

# seve-vet: one run produces the machine-readable findings artifact,
# diffs it against the checked-in baseline (failing on regressions AND
# on paid-off entries that should be deleted from the baseline), and
# audits for //seve:vet-ignore directives that suppress nothing. To
# intentionally accept a finding, prefer a reasoned //seve:vet-ignore;
# the baseline is for debt that cannot be suppressed at a single line.
go run ./cmd/seve-vet -json -baseline vet-baseline.json -audit-ignores ./... > seve-vet.json
echo "seve-vet: clean against vet-baseline.json (artifact: seve-vet.json)"
go test -race ./...
go test -shuffle=on ./...
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/wire

# Coverage gate: statement coverage of the two packages the resume
# protocol cuts through must not regress below the floor.
cover_gate() {
    pkg="$1"
    floor="$2"
    profile="$(mktemp)"
    go test -coverprofile="$profile" "$pkg" >/dev/null
    total="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')"
    rm -f "$profile"
    if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t < f) }'; then
        echo "coverage gate: $pkg at ${total}% is below the ${floor}% floor" >&2
        exit 1
    fi
    echo "coverage gate: $pkg ${total}% (floor ${floor}%)"
}
cover_gate ./internal/core 90
cover_gate ./internal/transport 75
cover_gate ./internal/integrity 90
