#!/bin/sh
# CI gate: vet (generic + domain-specific), the full test suite under
# the race detector and again with shuffled test order, and a short fuzz
# smoke of the wire codec. The engine's push scheduler fans closure
# planning over goroutines and the shard router plans epochs on
# persistent lane workers, so every change must pass -race, not just
# plain `go test` — the -race run covers TestShardedEquivalence, the
# sharded-vs-single-lane byte-identity differential;
# -shuffle=on keeps tests honest about shared state
# (the wire pool is process-global); seve-vet enforces the action
# read/write-set, pool-ownership, nocopy and determinism contracts
# (DESIGN.md §9); the fuzz pass keeps Decode honest against hostile
# frames beyond the checked-in corpus.
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go run ./cmd/seve-vet ./...
go test -race ./...
go test -shuffle=on ./...
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/wire
