#!/bin/sh
# Benchmark battery for the protocol engines: the per-submission hot
# path (BenchmarkServerSubmit), the Fig6/Fig7 end-to-end experiment
# benches, the conflict-index microbenches (BenchmarkClosureDeepQueue,
# BenchmarkTickManyClients), the delivery-path microbenches from the
# pooled-encoding PR (BenchmarkEncodeBatch, BenchmarkPushFanOut,
# BenchmarkClientReconcileDeepQueue), and the sharded-serializer round
# benches (BenchmarkShardedSubmit, BenchmarkShardedTick), the
# shardscale experiment sweep from the sharding PR, the adversarial
# delivery sweep from the superseding-queue PR (drop-at-cap vs
# in-place supersession under flash-crowd, trading-storm, and
# interest-churn stalls; see internal/experiments/adversarial.go), and
# the durablecommit sweep from the durability PR (engine submit-path
# overhead of the attached journal per fsync policy; see
# internal/experiments/durablecommit.go), and the cheataudit sweep from
# the integrity PR (enforcement overhead and cheat detection latency
# per audit sample rate; see internal/experiments/cheataudit.go).
#
# Writes the raw `go test -bench` output and a JSON summary to
# BENCH_PR10.json at the repo root. BenchmarkServerSubmit grows the
# uncommitted queue monotonically (no completions), so it runs with a
# pinned iteration count: letting benchtime ramp b.N would measure a
# queue three orders of magnitude deeper than the seed baseline did.
# The shardscale sweep reports best-of-3 per configuration (one
# measurement is tens of milliseconds of engine compute; see
# internal/experiments/shardscale.go) across a uniform workload and a
# flash-crowd skew variant; on a single-core host its wall_x column
# shows only the pipeline's serial overhead and achievable_x carries
# the scalability projection.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_PR10.json}"
raw="$(mktemp)"
sweep="$(mktemp)"
adv="$(mktemp)"
dur="$(mktemp)"
aud="$(mktemp)"
trap 'rm -f "$raw" "$sweep" "$adv" "$dur" "$aud"' EXIT

go test -run '^$' -bench 'BenchmarkServerSubmit$' -benchmem -benchtime 10000x . | tee "$raw"
go test -run '^$' -bench 'BenchmarkClosureDeepQueue|BenchmarkTickManyClients' \
    -benchmem -benchtime 50x . | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkShardedSubmit|BenchmarkShardedTick' \
    -benchmem -benchtime 50x . | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkEncodeBatch|BenchmarkPushFanOut|BenchmarkClientReconcileDeepQueue' \
    -benchmem . | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkFig6|BenchmarkFig7' -benchmem . | tee -a "$raw"

# The shardscale sweep: sharded submit throughput and the phase-timing
# scalability projection per shard count (see internal/experiments).
go run ./cmd/seve-bench -experiment shardscale -csv | tee "$sweep"

# The adversarial delivery sweep: superseding on/off row pairs per
# stall scenario; bytes_x on an "on" row is the stalled-cohort byte
# reduction against its "off" twin.
go run ./cmd/seve-bench -experiment adversarial -csv | tee "$adv"

# The durablecommit sweep: engine submits/s with no journal vs the
# journal attached under each fsync policy, best-of-3 per row; the
# overhead column is relative to the journal=off baseline.
go run ./cmd/seve-bench -experiment durablecommit -csv | tee "$dur"

# The cheataudit sweep: honest-workload submits/s per audit sample rate
# (overhead relative to the integrity-off baseline) and the mean number
# of tampered completions a value-tampering cheater lands before the
# sampled auditor quarantines it (~1/rate; "-" = never detected).
go run ./cmd/seve-bench -experiment cheataudit -csv | tee "$aud"

# Fold the benchmark lines into JSON: {"benchmarks": [{name, iterations,
# ns_per_op, bytes_per_op, allocs_per_op}, ...], "shardscale":
# [{workload, shards, submits_per_s, wall_x, achievable_x, epochs,
# partitioned, imbalance}, ...]}.
awk '
BEGIN { print "{"; printf "  \"benchmarks\": [" ; n = 0 }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { printf "\n  ],\n" }
' "$raw" > "$out"
awk -F, '
BEGIN { printf "  \"shardscale\": ["; n = 0 }
/^(uniform|flash),/ {
    if (n++) printf ","
    printf "\n    {\"workload\": \"%s\", \"shards\": %s, \"submits_per_s\": %s, \"wall_x\": %s, \"achievable_x\": %s, \"epochs\": %s, \"partitioned\": %s, \"imbalance\": %s}",
        $1, $2, $3, $4, $5, $6, $7, $8
}
END { print "\n  ],\n" }
' "$sweep" >> "$out"
awk -F, '
BEGIN { printf "  \"adversarial\": ["; n = 0 }
/^(uniform|flash|auction|churn),(off|on),/ {
    if (n++) printf ","
    printf "\n    {\"workload\": \"%s\", \"superseding\": \"%s\", \"delivered_kb\": %s, \"stalled_kb\": %s, \"frames\": %s, \"avg_envs\": %s, \"enqueued\": %s, \"drops\": %s, \"drop_pct\": %s, \"superseded\": %s, \"coalesced\": %s, \"snapshots\": %s, \"max_stale\": %s, \"bytes_x\": %s}",
        $1, $2, $3, $4, $5, $6, $7, $8, $9, $10, $11, $12, $13, $14
}
END { print "\n  ],\n" }
' "$adv" >> "$out"
awk -F, '
BEGIN { printf "  \"durablecommit\": ["; n = 0 }
/^(off|batch|interval|ckpt),/ {
    pct = $3; sub(/%$/, "", pct)
    if (n++) printf ","
    printf "\n    {\"fsync\": \"%s\", \"submits_per_s\": %s, \"overhead_pct\": %s, \"group_commits\": %s, \"checkpoints\": %s, \"lag_at_end\": %s, \"drain_ms\": %s}",
        $1, $2, pct, $4, $5, $6, $7
}
END { print "\n  ],\n" }
' "$dur" >> "$out"
awk -F, '
BEGIN { printf "  \"cheataudit\": ["; n = 0 }
/^(off|[0-9]+\.[0-9]+),/ {
    ov = $3; sub(/%$/, "", ov)
    ap = $5; sub(/%$/, "", ap)
    det = $6; sub(/ .*/, "", det)
    if (det == "-") det = "null"
    if (n++) printf ","
    printf "\n    {\"rate\": \"%s\", \"submits_per_s\": %s, \"overhead_pct\": %s, \"audits\": %s, \"audited_pct\": %s, \"detect_at\": %s}",
        $1, $2, ov, $4, ap, det
}
END { print "\n  ]"; print "}" }
' "$aud" >> "$out"
echo "wrote $out"
