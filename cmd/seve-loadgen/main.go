// Command seve-loadgen drives a fleet of real TCP clients against a
// seve-server — the in-process analogue of the paper's 64 EMULab client
// machines. Each simulated player walks its avatar at the Table I rate;
// the tool prints aggregate response-time statistics.
//
// Usage:
//
//	seve-server -addr :7777 -walls 10000 &
//	seve-loadgen -addr 127.0.0.1:7777 -walls 10000 -clients 32 -moves 50
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/manhattan"
	"seve/internal/metrics"
	"seve/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7777", "server address")
		seed     = flag.Int64("seed", 1, "world seed (must match server)")
		size     = flag.Float64("size", 1000, "world side length")
		walls    = flag.Int("walls", 10_000, "number of walls")
		avatars  = flag.Int("avatars", 64, "maximum clients/avatars (must match server)")
		clients  = flag.Int("clients", 8, "fleet size")
		moves    = flag.Int("moves", 50, "moves per client")
		interval = flag.Duration("interval", 300*time.Millisecond, "time between moves")
		mode     = flag.String("mode", "infobound", "protocol level (must match server)")
	)
	flag.Parse()

	wcfg := manhattan.DefaultConfig()
	wcfg.Seed = *seed
	wcfg.Width, wcfg.Height = *size, *size
	wcfg.NumWalls = *walls
	wcfg.NumAvatars = *avatars
	w := manhattan.NewWorld(wcfg)
	manhattan.RegisterWire(w)

	cfg := core.DefaultConfig()
	switch *mode {
	case "basic":
		cfg.Mode = core.ModeBasic
	case "incomplete":
		cfg.Mode = core.ModeIncomplete
	case "firstbound":
		cfg.Mode = core.ModeFirstBound
	case "infobound":
		cfg.Mode = core.ModeInfoBound
	default:
		log.Fatalf("seve-loadgen: unknown mode %q", *mode)
	}

	var (
		mu       sync.Mutex
		resp     metrics.Recorder
		dropped  int
		failures int
	)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := runPlayer(*addr, cfg, w, *moves, *interval, &mu, &resp, &dropped); err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
				log.Printf("seve-loadgen: player: %v", err)
			}
		}()
		// Stagger joins like real players trickling in.
		time.Sleep(*interval / time.Duration(*clients))
	}
	wg.Wait()

	fmt.Printf("fleet: %d clients x %d moves in %.1fs (%d failures)\n",
		*clients, *moves, time.Since(start).Seconds(), failures)
	fmt.Printf("committed: %d, dropped: %d\n", resp.Count(), dropped)
	fmt.Printf("response ms: mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		resp.Mean(), resp.Percentile(50), resp.Percentile(95), resp.Percentile(99), resp.Max())
}

// runPlayer joins, walks, and reports its samples into the shared
// recorder.
func runPlayer(addr string, cfg core.Config, w *manhattan.World, moves int,
	interval time.Duration, mu *sync.Mutex, resp *metrics.Recorder, dropped *int) error {

	cl, err := transport.Dial(addr, cfg, 0)
	if err != nil {
		return err
	}
	defer cl.Close()

	type pending struct{ at time.Time }
	var pmu sync.Mutex
	inflight := map[uint32]pending{}
	done := make(chan struct{}, moves)

	cl.OnCommit = func(c core.Commit) {
		pmu.Lock()
		p, ok := inflight[c.ActID.Seq]
		delete(inflight, c.ActID.Seq)
		pmu.Unlock()
		if ok {
			mu.Lock()
			resp.Add(float64(time.Since(p.at)) / float64(time.Millisecond))
			mu.Unlock()
		}
		done <- struct{}{}
	}
	cl.OnDrop = func(id action.ID) {
		pmu.Lock()
		delete(inflight, id.Seq)
		pmu.Unlock()
		mu.Lock()
		*dropped++
		mu.Unlock()
		done <- struct{}{}
	}
	runErr := make(chan error, 1)
	go func() { runErr <- cl.Run() }()

	avatar := manhattan.AvatarID(int(cl.ID()))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for m := 0; m < moves; m++ {
		select {
		case err := <-runErr:
			return fmt.Errorf("connection lost: %w", err)
		case <-ticker.C:
		}
		var mv *manhattan.MoveAction
		var mkErr error
		cl.Engine(func(e *core.Client) {
			mv, mkErr = w.NewMove(e.NextActionID(), avatar, e.Optimistic())
		})
		if mkErr != nil {
			return mkErr
		}
		pmu.Lock()
		inflight[mv.ID().Seq] = pending{at: time.Now()}
		pmu.Unlock()
		if _, err := cl.Submit(mv); err != nil {
			return err
		}
	}
	// Wait for all resolutions (commit or drop), bounded.
	deadline := time.After(15 * time.Second)
	for resolved := 0; resolved < moves; resolved++ {
		select {
		case <-done:
		case <-deadline:
			return fmt.Errorf("%d moves unresolved at deadline", moves-resolved)
		}
	}
	return nil
}
