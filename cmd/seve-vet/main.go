// Command seve-vet is the engine's domain-specific static analyzer. It
// enforces the seven contracts the test suite can only spot-check:
// action read/write-set confinement (rwset), pooled buffer and frame
// ownership (pooldiscipline), no by-value copies of address-identity
// state (nocopy), no map-iteration nondeterminism on byte-identical
// output paths (detorder), no blocking operations inside mutex regions
// (lockscope), lane-partitioned state touched only from its lane's
// worker or the sequential seal passes (laneaffinity), and explicit
// supersession metadata on every transport-bound reply with Ordered
// frames provably unshedable (deliveryclass). See DESIGN.md §9 and §14.
//
// Usage:
//
//	go run ./cmd/seve-vet ./...
//	go run ./cmd/seve-vet -c rwset,detorder ./internal/core
//	go run ./cmd/seve-vet -json -baseline vet-baseline.json -audit-ignores ./...
//	go run ./cmd/seve-vet -sarif ./... > seve-vet.sarif
//
// Packages are named by directory pattern; the trailing "..." wildcard
// matches the go tool's. In-package and external test files are
// analyzed alongside the code they test.
//
// -json and -sarif switch stdout to machine-readable output (the JSON
// form doubles as the baseline format). -baseline diffs the run against
// a checked-in findings baseline and fails on changes in either
// direction: fresh findings are regressions, vanished entries are
// paid-off debt whose baseline lines must be deleted. -write-baseline
// rewrites the baseline from the current run. -audit-ignores
// additionally fails on //seve:vet-ignore directives that no longer
// suppress anything.
//
// Exit status is 1 when any finding survives the //seve:vet-ignore
// directives (with -baseline: when the diff is non-empty; with
// -audit-ignores: also when a stale directive exists), 2 on usage or
// load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"seve/internal/vet"
)

func main() {
	checkerFlag := flag.String("c", "", "comma-separated checker subset (default: all)")
	jsonFlag := flag.Bool("json", false, "emit findings as JSON (the baseline format) on stdout")
	sarifFlag := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	baselineFlag := flag.String("baseline", "", "diff findings against this baseline file; fail on any change")
	writeBaselineFlag := flag.String("write-baseline", "", "write the current findings to this baseline file and exit clean")
	auditFlag := flag.Bool("audit-ignores", false, "fail on //seve:vet-ignore directives that suppress nothing")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: seve-vet [-c checkers] [-json|-sarif] [-baseline file] [-write-baseline file] [-audit-ignores] [packages]\ncheckers: %s\n",
			strings.Join(vet.CheckerNames(), ", "))
	}
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "seve-vet:", err)
		os.Exit(2)
	}
	if *jsonFlag && *sarifFlag {
		fail(fmt.Errorf("-json and -sarif are mutually exclusive"))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	loader, err := vet.NewLoader(".")
	if err != nil {
		fail(err)
	}

	checkers, err := selectCheckers(*checkerFlag)
	if err != nil {
		fail(err)
	}
	if *auditFlag && checkers != nil {
		fail(fmt.Errorf("-audit-ignores needs the full checker set; drop -c"))
	}

	dirs, err := expandPatterns(patterns)
	if err != nil {
		fail(err)
	}

	var findings []vet.Finding
	var stale []vet.StaleIgnore
	if *auditFlag {
		findings, stale, err = vet.RunDirsAudit(loader, dirs)
	} else {
		findings, err = vet.RunDirs(loader, dirs, checkers)
	}
	if err != nil {
		fail(err)
	}

	switch {
	case *jsonFlag:
		if err := vet.WriteJSON(os.Stdout, loader.ModRoot, findings); err != nil {
			fail(err)
		}
	case *sarifFlag:
		if err := vet.WriteSARIF(os.Stdout, loader.ModRoot, findings); err != nil {
			fail(err)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	for _, s := range stale {
		fmt.Fprintln(os.Stderr, s)
	}

	if *writeBaselineFlag != "" {
		f, err := os.Create(*writeBaselineFlag)
		if err != nil {
			fail(err)
		}
		if err := vet.WriteJSON(f, loader.ModRoot, findings); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		// A freshly written baseline is by definition in sync; only the
		// stale-ignore audit can still fail the run.
		if len(stale) > 0 {
			os.Exit(1)
		}
		return
	}

	bad := len(stale) > 0
	if *baselineFlag != "" {
		base, err := vet.ReadBaseline(*baselineFlag)
		if err != nil {
			fail(err)
		}
		fresh, gone := vet.DiffBaseline(base, loader.ModRoot, findings)
		for _, f := range fresh {
			fmt.Fprintf(os.Stderr, "seve-vet: new finding not in baseline: %s:%d: [%s] %s\n", f.File, f.Line, f.Checker, f.Message)
		}
		for _, f := range gone {
			fmt.Fprintf(os.Stderr, "seve-vet: baseline entry no longer produced (delete it): %s:%d: [%s] %s\n", f.File, f.Line, f.Checker, f.Message)
		}
		bad = bad || len(fresh) > 0 || len(gone) > 0
	} else {
		bad = bad || len(findings) > 0
	}
	if bad {
		os.Exit(1)
	}
}

// selectCheckers resolves the -c flag; empty means all.
func selectCheckers(names string) ([]vet.Checker, error) {
	if names == "" {
		return nil, nil
	}
	byName := make(map[string]vet.Checker)
	for _, c := range vet.AllCheckers() {
		byName[c.Name()] = c
	}
	var out []vet.Checker
	for _, n := range strings.Split(names, ",") {
		c, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown checker %q (known: %s)", n, strings.Join(vet.CheckerNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// expandPatterns turns go-style package patterns into directories.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			sub, err := vet.ListPackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
			continue
		}
		add(filepath.Clean(p))
	}
	return dirs, nil
}
