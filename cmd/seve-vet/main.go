// Command seve-vet is the engine's domain-specific static analyzer. It
// enforces the four contracts the test suite can only spot-check: action
// read/write-set confinement (rwset), pooled buffer and frame ownership
// (pooldiscipline), no by-value copies of address-identity state
// (nocopy), and no map-iteration nondeterminism on byte-identical
// output paths (detorder). See DESIGN.md §9.
//
// Usage:
//
//	go run ./cmd/seve-vet ./...
//	go run ./cmd/seve-vet -c rwset,detorder ./internal/core
//
// Packages are named by directory pattern; the trailing "..." wildcard
// matches the go tool's. In-package and external test files are
// analyzed alongside the code they test. Exit status is 1 when any
// finding survives the //seve:vet-ignore directives, 2 on usage or
// load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"seve/internal/vet"
)

func main() {
	checkerFlag := flag.String("c", "", "comma-separated checker subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: seve-vet [-c checkers] [packages]\ncheckers: %s\n",
			strings.Join(vet.CheckerNames(), ", "))
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	loader, err := vet.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "seve-vet:", err)
		os.Exit(2)
	}

	checkers, err := selectCheckers(*checkerFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seve-vet:", err)
		os.Exit(2)
	}

	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seve-vet:", err)
		os.Exit(2)
	}

	findings, err := vet.RunDirs(loader, dirs, checkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seve-vet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// selectCheckers resolves the -c flag; empty means all.
func selectCheckers(names string) ([]vet.Checker, error) {
	if names == "" {
		return nil, nil
	}
	byName := make(map[string]vet.Checker)
	for _, c := range vet.AllCheckers() {
		byName[c.Name()] = c
	}
	var out []vet.Checker
	for _, n := range strings.Split(names, ",") {
		c, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown checker %q (known: %s)", n, strings.Join(vet.CheckerNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// expandPatterns turns go-style package patterns into directories.
func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			sub, err := vet.ListPackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
			continue
		}
		add(filepath.Clean(p))
	}
	return dirs, nil
}
