// Command seve-bench regenerates the paper's evaluation artifacts
// (Section V of "Scalability for Virtual Worlds", ICDE 2009): one table
// per figure, printed to stdout.
//
// Usage:
//
//	seve-bench -experiment fig6          # one artifact
//	seve-bench -experiment all -quick    # whole battery at reduced scale
//
// Experiments: tablei, fig6, fig7, fig8, fig9, fig10, table2, limit,
// serverstats (the engine's conflict-index and push-scheduler counters),
// clientstats (the client fleet's reconciliation and divergence
// counters), plus the extensions protocols, zoning, hybrid, shardscale
// (sharded-serializer submit throughput vs shard count), adversarial
// (superseding delivery queue vs drop-at-cap under flash-crowd,
// trading-storm, and interest-churn stalls), durablecommit (engine
// submit-path overhead of the attached journal per fsync policy),
// cheataudit (integrity enforcement overhead and cheat detection
// latency per audit sample rate),
// ablation-omega, ablation-threshold, ablation-gc (ablations = all
// three), and all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"seve/internal/experiments"
	"seve/internal/metrics"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "artifact to regenerate: tablei|fig6|fig7|fig8|fig9|fig10|table2|limit|serverstats|clientstats|protocols|zoning|hybrid|shardscale|adversarial|durablecommit|cheataudit|ablations|ablation-omega|ablation-threshold|ablation-gc|all")
		quick      = flag.Bool("quick", false, "reduced sweeps and move counts (seconds instead of minutes)")
		verbose    = flag.Bool("v", false, "print per-run progress")
		csv        = flag.Bool("csv", false, "emit comma-separated values instead of aligned tables")
	)
	flag.Parse()

	opt := experiments.Options{Quick: *quick}
	if *verbose {
		opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	type gen struct {
		name string
		run  func(experiments.Options) (*metrics.Table, error)
	}
	gens := []gen{
		{"tablei", func(experiments.Options) (*metrics.Table, error) { return experiments.TableI(), nil }},
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"fig8", experiments.Fig8},
		{"fig9", experiments.Fig9},
		{"fig10", experiments.Fig10},
		{"table2", experiments.Table2},
		{"limit", experiments.Limit},
		{"serverstats", experiments.EngineStats},
		{"clientstats", experiments.ClientEngineStats},
		{"protocols", experiments.Protocols},
		{"zoning", experiments.Zoning},
		{"hybrid", experiments.Hybrid},
		{"shardscale", experiments.Shardscale},
		{"adversarial", experiments.Adversarial},
		{"durablecommit", experiments.Durablecommit},
		{"cheataudit", experiments.Cheataudit},
		{"ablation-omega", experiments.AblationOmega},
		{"ablation-threshold", experiments.AblationThreshold},
		{"ablation-gc", experiments.AblationGC},
	}

	ran := false
	for _, g := range gens {
		matches := *experiment == "all" || *experiment == g.name ||
			(*experiment == "ablations" && strings.HasPrefix(g.name, "ablation-"))
		if !matches {
			continue
		}
		ran = true
		table, err := g.run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seve-bench: %s: %v\n", g.name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", table.Title, table.CSV())
		} else {
			fmt.Println(table.String())
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "seve-bench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}
