// Command seve-client joins a seve-server world and walks an avatar
// around it, printing per-move response times — a command-line analogue
// of the paper's EMULab client machines.
//
// The -seed/-size/-walls flags must match the server's so both ends
// derive the same static geometry.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/manhattan"
	"seve/internal/metrics"
	"seve/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7777", "server address")
		seed     = flag.Int64("seed", 1, "world seed (must match server)")
		size     = flag.Float64("size", 1000, "world side length")
		walls    = flag.Int("walls", 10_000, "number of walls")
		avatars  = flag.Int("avatars", 64, "maximum clients/avatars (must match server)")
		moves    = flag.Int("moves", 100, "moves to submit")
		interval = flag.Duration("interval", 300*time.Millisecond, "time between moves")
		mode     = flag.String("mode", "infobound", "protocol level (must match server)")
		retries  = flag.Int("reconnect", 8, "reconnect attempts after a dropped connection (0 = exit on disconnect)")
	)
	flag.Parse()

	wcfg := manhattan.DefaultConfig()
	wcfg.Seed = *seed
	wcfg.Width, wcfg.Height = *size, *size
	wcfg.NumWalls = *walls
	wcfg.NumAvatars = *avatars
	w := manhattan.NewWorld(wcfg)
	manhattan.RegisterWire(w)

	cfg := core.DefaultConfig()
	switch *mode {
	case "basic":
		cfg.Mode = core.ModeBasic
	case "incomplete":
		cfg.Mode = core.ModeIncomplete
	case "firstbound":
		cfg.Mode = core.ModeFirstBound
	case "infobound":
		cfg.Mode = core.ModeInfoBound
	default:
		log.Fatalf("seve-client: unknown mode %q", *mode)
	}

	if *retries > 0 {
		// ResumeWindow > 0 turns on client-side completion retention, the
		// half of the resume handshake the client owns.
		cfg.ResumeWindow = 16
	}
	cl, err := transport.Dial(*addr, cfg, 0)
	if err != nil {
		log.Fatalf("seve-client: %v", err)
	}
	defer cl.Close()
	cl.Reconnect = transport.ReconnectConfig{MaxAttempts: *retries, Jitter: 0.5}

	avatar := manhattan.AvatarID(int(cl.ID()))
	log.Printf("seve-client: joined as client %d (avatar object %d)", cl.ID(), avatar)

	var resp metrics.Recorder
	submitTimes := make(map[uint32]time.Time)
	committed := make(chan uint32, 64)
	dropped := 0
	droppedCh := make(chan action.ID, 16)
	cl.OnCommit = func(c core.Commit) { committed <- c.ActID.Seq }
	cl.OnDrop = func(id action.ID) { droppedCh <- id }
	runDone := make(chan error, 1)
	go func() { runDone <- cl.Run() }()

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	sent := 0
	for sent < *moves {
		select {
		case err := <-runDone:
			log.Fatalf("seve-client: connection lost: %v", err)
		case seq := <-committed:
			if at, ok := submitTimes[seq]; ok {
				resp.Add(float64(time.Since(at)) / float64(time.Millisecond))
				delete(submitTimes, seq)
			}
		case id := <-droppedCh:
			dropped++
			delete(submitTimes, id.Seq)
		case <-ticker.C:
			var mv *manhattan.MoveAction
			var err error
			cl.Engine(func(e *core.Client) {
				mv, err = w.NewMove(e.NextActionID(), avatar, e.Optimistic())
			})
			if err != nil {
				log.Fatalf("seve-client: %v", err)
			}
			submitTimes[mv.ID().Seq] = time.Now()
			if _, err := cl.Submit(mv); err != nil {
				if *retries == 0 {
					log.Fatalf("seve-client: %v", err)
				}
				// The action is queued on the engine; the resume
				// handshake re-submits it once the reconnect lands.
				log.Printf("seve-client: submit during disconnect (resume pending): %v", err)
			}
			sent++
		}
	}
	// Drain remaining commits briefly.
	deadline := time.After(5 * time.Second)
	for len(submitTimes) > 0 {
		select {
		case seq := <-committed:
			if at, ok := submitTimes[seq]; ok {
				resp.Add(float64(time.Since(at)) / float64(time.Millisecond))
				delete(submitTimes, seq)
			}
		case id := <-droppedCh:
			dropped++
			delete(submitTimes, id.Seq)
		case <-deadline:
			log.Printf("seve-client: %d moves unresolved at exit", len(submitTimes))
			goto done
		}
	}
done:
	fmt.Printf("moves: %d committed, %d dropped\n", resp.Count(), dropped)
	fmt.Printf("response ms: mean=%.1f p50=%.1f p95=%.1f max=%.1f\n",
		resp.Mean(), resp.Percentile(50), resp.Percentile(95), resp.Max())
}
