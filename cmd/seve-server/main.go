// Command seve-server runs a SEVE world server over TCP.
//
// It hosts a Manhattan People world; clients (cmd/seve-client) connect,
// receive the initial world, and submit moves. The server executes no
// game logic — it timestamps actions, computes transitive closures, and
// relays (Section III of the paper).
//
// The workload world is derived deterministically from -seed and the
// size flags, so clients started with the same flags share the same
// walls without any geometry crossing the wire.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"seve/internal/core"
	"seve/internal/durable"
	"seve/internal/manhattan"
	"seve/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", ":7777", "listen address")
		seed    = flag.Int64("seed", 1, "world seed (must match clients)")
		size    = flag.Float64("size", 1000, "world side length")
		walls   = flag.Int("walls", 10_000, "number of walls")
		avatars = flag.Int("avatars", 64, "maximum number of clients/avatars")
		mode    = flag.String("mode", "infobound", "protocol level: basic|incomplete|firstbound|infobound")
		rtt     = flag.Float64("rtt", 100, "assumed client RTT in ms (bound models)")
		data    = flag.String("data", "", "directory for the durability journal and checkpoints (empty = in-memory only)")
		fsync   = flag.String("fsync", "batch", "journal fsync policy: batch|interval|checkpoint")
		fsyncMs = flag.Int("fsync-interval-ms", 50, "fsync period for -fsync=interval")
		snapEvr = flag.Uint64("snapshot-every", 4096, "installed actions between epoch checkpoints")
		degrade = flag.String("wal-degrade", "block", "behavior when the journal cannot keep up: block (backpressure, stop acknowledging on error) | shed (drop records, keep serving)")
		shards  = flag.Int("shards", 0, "shard lanes for the sharded serializer (0 or 1 = single-lane engine)")
		resume  = flag.Int("resume-window", 16, "committed batches retained per client for session resume (0 = disconnects are final)")
		audit   = flag.Float64("audit", 0.05, "fraction of completions the integrity auditor re-executes against the authoritative state (0 = validator only, 1 = audit everything; DESIGN.md §16)")
		maxRate = flag.Float64("max-submit-rate", 0, "per-client submissions/second cap (0 = unlimited)")
		verbose = flag.Bool("v", false, "log client joins and drops")
	)
	flag.Parse()

	wcfg := manhattan.DefaultConfig()
	wcfg.Seed = *seed
	wcfg.Width, wcfg.Height = *size, *size
	wcfg.NumWalls = *walls
	wcfg.NumAvatars = *avatars
	w := manhattan.NewWorld(wcfg)
	manhattan.RegisterWire(w)

	cfg := core.DefaultConfig()
	cfg.Shards = *shards
	cfg.ResumeWindow = *resume
	cfg.RTTMs = *rtt
	cfg.MaxSpeed = wcfg.Speed
	cfg.DefaultRadius = wcfg.EffectRange
	cfg.Threshold = 1.5 * wcfg.Visibility
	cfg.AuditRate = *audit
	cfg.MaxSubmitRate = *maxRate
	switch *mode {
	case "basic":
		cfg.Mode = core.ModeBasic
	case "incomplete":
		cfg.Mode = core.ModeIncomplete
	case "firstbound":
		cfg.Mode = core.ModeFirstBound
	case "infobound":
		cfg.Mode = core.ModeInfoBound
	default:
		fmt.Fprintf(os.Stderr, "seve-server: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	init := w.InitialState(0)
	scfg := transport.ServerConfig{Core: cfg, Init: init}
	if *verbose {
		scfg.Logf = log.Printf
	}
	if *data != "" {
		opts := durable.Options{
			FsyncEvery:    time.Duration(*fsyncMs) * time.Millisecond,
			SnapshotEvery: *snapEvr,
			ResumeWindow:  *resume,
		}
		switch *fsync {
		case "batch":
			opts.Fsync = durable.FsyncBatch
		case "interval":
			opts.Fsync = durable.FsyncInterval
		case "checkpoint":
			opts.Fsync = durable.FsyncCheckpoint
		default:
			fmt.Fprintf(os.Stderr, "seve-server: unknown fsync policy %q\n", *fsync)
			os.Exit(2)
		}
		switch *degrade {
		case "block":
			opts.Degrade = durable.DegradeBlock
		case "shed":
			opts.Degrade = durable.DegradeShed
		default:
			fmt.Fprintf(os.Stderr, "seve-server: unknown degrade policy %q\n", *degrade)
			os.Exit(2)
		}
		if *verbose {
			opts.Logf = log.Printf
		}
		// Boot-time recovery: rebuild the durable point from the journal
		// (the generated world seeds a virgin store), rewind the engine
		// to it, then journal on. Crash-restart = resume.
		store, recovery, err := durable.Open(*data, init, opts)
		if err != nil {
			log.Fatalf("seve-server: opening journal %s: %v", *data, err)
		}
		defer store.Close()
		scfg.Durable = store
		scfg.Recovery = recovery
		if up := recovery.Restore.UpTo; up > 0 {
			log.Printf("seve-server: recovered %d objects through action %d (%d sessions, boot %d) from %s",
				recovery.State.Len(), up, len(recovery.Restore.Sessions), recovery.Restore.Boot, *data)
		}
	}
	srv := transport.NewServer(scfg)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("seve-server: %v", err)
	}
	lanes := "single-lane"
	if *shards > 1 {
		lanes = fmt.Sprintf("%d shard lanes", *shards)
	}
	log.Printf("seve-server: %s world %gx%g, %d walls, mode %s (%s), listening on %s",
		mapName(*seed), *size, *size, *walls, cfg.Mode, lanes, l.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		st := srv.Metrics()
		log.Printf("seve-server: shutting down (installed %d actions)\n%s", st.Installed, st)
		if rs := srv.RouterMetrics(); rs.Shards > 1 {
			log.Printf("seve-server: shard router\n%s", rs)
		}
		srv.Close()
		l.Close()
	}()

	if err := srv.Serve(l); err != nil {
		log.Fatalf("seve-server: %v", err)
	}
}

func mapName(seed int64) string {
	return fmt.Sprintf("manhattan-people/%d", seed)
}
