package seve_test

// Benchmarks regenerating (at reduced scale) the paper's evaluation
// artifacts, one per figure/table, plus micro-benchmarks of the hot
// protocol paths. `go test -bench=. -benchmem` runs them all; the full
// artifacts come from `go run ./cmd/seve-bench`.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"seve/internal/action"
	"seve/internal/core"
	"seve/internal/durable"
	"seve/internal/experiments"
	"seve/internal/geom"
	"seve/internal/manhattan"
	"seve/internal/shard"
	"seve/internal/wire"
	"seve/internal/world"
)

// runOnce executes one scaled-down experiment run per iteration.
func runOnce(b *testing.B, rc experiments.RunConfig) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(rc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Committed == 0 {
			b.Fatal("no commits")
		}
	}
}

func scaled(arch experiments.Arch, clients int) experiments.RunConfig {
	rc := experiments.DefaultRunConfig(arch, clients)
	rc.MovesPerClient = 20
	rc.World.NumWalls = 2000
	rc.World.BaseCostMs = 7.44
	rc.World.PerWallCostMs = 0
	rc.SlackMs = 30_000
	return rc
}

// --- Figure 6: response time vs clients ---

func BenchmarkFig6SEVE32(b *testing.B)      { runOnce(b, scaled(experiments.ArchSEVE, 32)) }
func BenchmarkFig6Central32(b *testing.B)   { runOnce(b, scaled(experiments.ArchCentral, 32)) }
func BenchmarkFig6Broadcast32(b *testing.B) { runOnce(b, scaled(experiments.ArchBroadcast, 32)) }
func BenchmarkFig6SEVE64(b *testing.B)      { runOnce(b, scaled(experiments.ArchSEVE, 64)) }
func BenchmarkFig6Central64(b *testing.B)   { runOnce(b, scaled(experiments.ArchCentral, 64)) }
func BenchmarkFig6Broadcast64(b *testing.B) { runOnce(b, scaled(experiments.ArchBroadcast, 64)) }

// --- Figure 7: response time vs per-action complexity (25 clients) ---

func benchFig7(b *testing.B, arch experiments.Arch, costMs float64) {
	rc := scaled(arch, 25)
	rc.World.BaseCostMs = costMs
	runOnce(b, rc)
}

func BenchmarkFig7SEVECost25ms(b *testing.B)      { benchFig7(b, experiments.ArchSEVE, 25) }
func BenchmarkFig7CentralCost25ms(b *testing.B)   { benchFig7(b, experiments.ArchCentral, 25) }
func BenchmarkFig7BroadcastCost25ms(b *testing.B) { benchFig7(b, experiments.ArchBroadcast, 25) }

// --- Figure 8 / Table II: density and dropping ---

func benchFig8(b *testing.B, arch experiments.Arch, visibility float64) {
	rc := experiments.DefaultRunConfig(arch, 60)
	rc.World.Width, rc.World.Height = 250, 250
	rc.World.NumWalls = 3000
	rc.World.Visibility = visibility
	rc.MovesPerClient = 15
	rc.Spacing = 4
	rc.BandwidthBps = 1_000_000
	rc.SlackMs = 30_000
	cfg := core.DefaultConfig()
	cfg.RTTMs = 2 * rc.LatencyMs
	cfg.MaxSpeed = rc.World.Speed
	cfg.DefaultRadius = rc.World.EffectRange
	cfg.Threshold = 45
	rc.Core = cfg
	runOnce(b, rc)
}

func BenchmarkFig8DenseNoDrop(b *testing.B) { benchFig8(b, experiments.ArchSEVENoDrop, 70) }
func BenchmarkFig8DenseDrop(b *testing.B)   { benchFig8(b, experiments.ArchSEVE, 70) }

func BenchmarkTable2EffectRange11(b *testing.B) {
	rc := experiments.DefaultRunConfig(experiments.ArchSEVE, 60)
	rc.World.Width, rc.World.Height = 250, 250
	rc.World.NumWalls = 3000
	rc.World.Visibility = 20
	rc.World.EffectRange = 11
	rc.MovesPerClient = 15
	rc.Spacing = 4
	rc.BandwidthBps = 1_000_000
	cfg := core.DefaultConfig()
	cfg.RTTMs = 2 * rc.LatencyMs
	cfg.MaxSpeed = rc.World.Speed
	cfg.DefaultRadius = 11
	cfg.Threshold = 30
	rc.Core = cfg
	runOnce(b, rc)
}

// --- Figure 9: traffic ---

func benchFig9(b *testing.B, arch experiments.Arch) {
	rc := scaled(arch, 32)
	rc.World.BaseCostMs = 1
	runOnce(b, rc)
}

func BenchmarkFig9SEVE(b *testing.B)      { benchFig9(b, experiments.ArchSEVE) }
func BenchmarkFig9Central(b *testing.B)   { benchFig9(b, experiments.ArchCentral) }
func BenchmarkFig9Broadcast(b *testing.B) { benchFig9(b, experiments.ArchBroadcast) }

// --- Figure 10: SEVE vs RING ---

func benchFig10(b *testing.B, arch experiments.Arch) {
	rc := experiments.DefaultRunConfig(arch, 48)
	rc.MovesPerClient = 20
	rc.World.Width, rc.World.Height = 250, 250
	rc.World.NumWalls = 2500
	rc.World.Visibility = 65
	rc.World.BaseCostMs = 1
	rc.World.PerWallCostMs = 0.002
	rc.RingVisibility = 65
	runOnce(b, rc)
}

func BenchmarkFig10SEVE(b *testing.B) { benchFig10(b, experiments.ArchSEVE) }
func BenchmarkFig10Ring(b *testing.B) { benchFig10(b, experiments.ArchRing) }

// --- Single-server limit: real engine throughput ---

// BenchmarkServerSubmit measures the real core.Server's per-submission
// cost with a 1000-entry uncommitted queue — the quantity behind the
// paper's 3500-client limit (Section V-B1) and our limit experiment.
func BenchmarkServerSubmit(b *testing.B) {
	const clients = 1000
	wcfg := manhattan.DefaultConfig()
	wcfg.Width, wcfg.Height = 10_000, 10_000
	wcfg.NumWalls = 1000
	wcfg.NumAvatars = clients
	w := manhattan.NewWorld(wcfg)
	init := w.InitialState(0)

	cfg := core.DefaultConfig()
	cfg.MaxSpeed = wcfg.Speed
	cfg.Threshold = 45
	srv := core.NewServer(cfg, init)
	for i := 1; i <= clients; i++ {
		srv.RegisterClient(action.ClientID(i), 0)
	}
	// Preload one round of uncommitted actions.
	for i := 1; i <= clients; i++ {
		cid := action.ClientID(i)
		mv, err := w.NewMove(action.ID{Client: cid, Seq: 1}, manhattan.AvatarID(i), init)
		if err != nil {
			b.Fatal(err)
		}
		srv.HandleSubmit(cid, &wire.Submit{Env: action.Envelope{Origin: cid, Act: mv}}, 0)
	}

	moves := make([]*wire.Submit, clients)
	for i := 1; i <= clients; i++ {
		cid := action.ClientID(i)
		mv, err := w.NewMove(action.ID{Client: cid, Seq: 2}, manhattan.AvatarID(i), init)
		if err != nil {
			b.Fatal(err)
		}
		moves[i-1] = &wire.Submit{Env: action.Envelope{Origin: cid, Act: mv}}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := moves[i%clients]
		srv.HandleSubmit(m.Env.Origin, m, float64(i))
	}
}

// --- Micro-benchmarks of hot paths ---

func BenchmarkIDSetIntersects(b *testing.B) {
	x := world.NewIDSet(1, 5, 9, 13, 17, 21, 25)
	y := world.NewIDSet(2, 6, 10, 14, 18, 22, 25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !x.Intersects(y) {
			b.Fatal("expected intersection")
		}
	}
}

func BenchmarkMVStoreReadAt(b *testing.B) {
	m := world.NewMVStore()
	for seq := uint64(0); seq < 64; seq++ {
		m.WriteAt(1, seq*3, world.Value{float64(seq)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := m.ReadAt(1, uint64(i%190)); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkMoveApply(b *testing.B) {
	wcfg := manhattan.DefaultConfig()
	wcfg.NumWalls = 10_000
	wcfg.NumAvatars = 16
	w := manhattan.NewWorld(wcfg)
	st := w.InitialState(0)
	mv, err := w.NewMove(action.ID{Client: 1, Seq: 1}, manhattan.AvatarID(1), st)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := action.Eval(mv, world.StateView{S: st})
		if !res.OK {
			b.Fatal("move aborted")
		}
	}
}

func BenchmarkWireBatchRoundTrip(b *testing.B) {
	bw := action.NewBlindWrite(action.ID{Client: action.OriginServer, Seq: 1},
		[]world.Write{{ID: 1, Val: world.Value{1, 2, 3, 4}}, {ID: 2, Val: world.Value{5, 6, 7, 8}}})
	batch := &wire.Batch{Envs: []action.Envelope{{Seq: 1, Origin: action.OriginServer, Act: bw}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := wire.Encode(batch)
		if _, err := wire.Decode(wire.TypeBatch, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentIndexCountWithin(b *testing.B) {
	wcfg := manhattan.DefaultConfig()
	wcfg.NumWalls = 100_000
	w := manhattan.NewWorld(wcfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ExactVisibleWalls(geom.Vec{X: float64(i%900) + 50, Y: 500})
	}
}

// --- Durability layer ---

// BenchmarkDurableCommitGroup measures the engine-side cost of feeding
// the journal: encode into a pooled buffer plus a channel send (the
// committer fsyncs on its own schedule under FsyncInterval).
func BenchmarkDurableCommitGroup(b *testing.B) {
	st, _, err := durable.Open(b.TempDir(), nil, durable.Options{
		Fsync:         durable.FsyncInterval,
		SnapshotEvery: 1 << 60,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	res := action.Result{OK: true, Writes: []world.Write{
		{ID: 1, Val: world.Value{1, 2, 3, 4}},
	}}
	recs := make([]core.CommitRecord, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs[0] = core.CommitRecord{Seq: uint64(i + 1), Res: res}
		st.CommitGroup(uint64(i+1), 0, recs)
	}
	if err := st.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDurableRecover measures crash recovery: Open against a
// 5000-record log tail (each iteration replays a fresh copy of the
// crashed directory, copied off the clock).
func BenchmarkDurableRecover(b *testing.B) {
	src := b.TempDir()
	st, _, err := durable.Open(src, nil, durable.Options{
		Fsync:         durable.FsyncCheckpoint,
		SnapshotEvery: 1 << 60,
	})
	if err != nil {
		b.Fatal(err)
	}
	res := action.Result{OK: true, Writes: []world.Write{
		{ID: 1, Val: world.Value{1, 2, 3, 4}},
	}}
	for i := 0; i < 5000; i++ {
		st.CommitGroup(uint64(i+1), 0, []core.CommitRecord{{Seq: uint64(i + 1), Res: res}})
	}
	if err := st.Sync(); err != nil {
		b.Fatal(err)
	}
	// Capture the crash image before Close's shutdown checkpoint would
	// flatten the tail away.
	files := map[string][]byte{}
	entries, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		files[e.Name()] = raw
	}
	st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		for name, raw := range files {
			if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		st2, rec, err := durable.Open(dir, nil, durable.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if rec.Restore.UpTo != 5000 {
			b.Fatalf("recovered up to %d", rec.Restore.UpTo)
		}
		b.StopTimer()
		st2.Close()
		b.StartTimer()
	}
}

// --- Engine rewrite benchmarks: conflict index + parallel push ---

// BenchmarkClosureDeepQueue measures one Algorithm 7 chain walk
// (Server.ChainLength) against a deep uncommitted queue, with and
// without the reverse conflict index. The indexed walk visits only
// conflicting entries, so its cost tracks the chain, not the queue.
func BenchmarkClosureDeepQueue(b *testing.B) {
	for _, depth := range []int{1000, 10_000} {
		for _, indexed := range []bool{true, false} {
			b.Run(fmt.Sprintf("depth=%d/indexed=%v", depth, indexed), func(b *testing.B) {
				const clients = 100
				wcfg := manhattan.DefaultConfig()
				wcfg.Width, wcfg.Height = 10_000, 10_000
				wcfg.NumWalls = 1000
				wcfg.NumAvatars = clients
				w := manhattan.NewWorld(wcfg)
				init := w.InitialState(0)

				cfg := core.DefaultConfig()
				cfg.Mode = core.ModeIncomplete
				cfg.MaxSpeed = wcfg.Speed
				cfg.DisableConflictIndex = !indexed
				srv := core.NewServer(cfg, init)
				for i := 1; i <= clients; i++ {
					srv.RegisterClient(action.ClientID(i), 0)
				}
				for n := 0; n < depth; n++ {
					i := n%clients + 1
					cid := action.ClientID(i)
					mv, err := w.NewMove(action.ID{Client: cid, Seq: uint32(n/clients + 1)},
						manhattan.AvatarID(i), init)
					if err != nil {
						b.Fatal(err)
					}
					srv.HandleSubmit(cid, &wire.Submit{Env: action.Envelope{Origin: cid, Act: mv}}, 0)
				}
				if srv.QueueLen() != depth {
					b.Fatalf("queue depth %d, want %d", srv.QueueLen(), depth)
				}
				probe, err := w.NewMove(action.ID{Client: 1, Seq: uint32(depth)},
					manhattan.AvatarID(1), init)
				if err != nil {
					b.Fatal(err)
				}
				rs := probe.ReadSet()

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if srv.ChainLength(rs) == 0 {
						b.Fatal("empty chain")
					}
				}
			})
		}
	}
}

// --- Delivery path benchmarks: pooled encoding + incremental reconcile ---

// benchBatch builds a push batch of nEnvs blind-write envelopes, the
// shape the First Bound scheduler fans out every tick.
func benchBatch(nEnvs int) *wire.Batch {
	envs := make([]action.Envelope, nEnvs)
	for i := range envs {
		bw := action.NewBlindWrite(action.ID{Client: action.OriginServer, Seq: uint32(i + 1)},
			[]world.Write{
				{ID: world.ObjectID(2*i + 1), Val: world.Value{1, 2, 3, 4}},
				{ID: world.ObjectID(2*i + 2), Val: world.Value{5, 6, 7, 8}},
			})
		envs[i] = action.Envelope{Seq: uint64(i + 1), Origin: action.OriginServer, Act: bw}
	}
	return &wire.Batch{Envs: envs, Push: true, InstalledUpTo: 7, ClientSeq: 9}
}

// BenchmarkEncodeBatch compares the allocating encoder against the
// pooled append-style path for one 32-envelope push batch.
func BenchmarkEncodeBatch(b *testing.B) {
	batch := benchBatch(32)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(wire.Encode(batch)) == 0 {
				b.Fatal("empty encoding")
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		buf := wire.GetBuf(batch.WireSize())
		defer func() { wire.PutBuf(buf) }()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = wire.EncodeTo(buf, batch)
			if len(buf) == 0 {
				b.Fatal("empty encoding")
			}
		}
	})
}

// BenchmarkPushFanOut encodes one 32-envelope batch for 64 recipients —
// the per-tick fan-out — comparing per-recipient encoding against the
// encode-once frame cache the transport dispatch uses. Sibling batches
// share the envelope slice and differ only in the 21-byte header.
func BenchmarkPushFanOut(b *testing.B) {
	const recipients = 64
	shared := benchBatch(32).Envs
	batches := make([]*wire.Batch, recipients)
	for i := range batches {
		batches[i] = &wire.Batch{Envs: shared, Push: true, InstalledUpTo: 7, ClientSeq: uint64(i + 1)}
	}
	b.Run("per-recipient", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, m := range batches {
				if len(wire.Encode(m)) == 0 {
					b.Fatal("empty encoding")
				}
			}
		}
	})
	b.Run("encode-once", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var cache wire.EncodeCache
			for _, m := range batches {
				f := wire.NewFrameCached(&cache, m)
				if f.Len() == 0 {
					b.Fatal("empty frame")
				}
				f.Release()
			}
			cache.Reset()
		}
	})
}

// reconcileAction is a local action for the client reconciliation
// benchmark: reads rs, writes sum+delta into ws (same dependence shape
// as the core package's protocol-test action).
type reconcileAction struct {
	id     action.ID
	rs, ws world.IDSet
	delta  float64
}

func (a *reconcileAction) ID() action.ID         { return a.id }
func (a *reconcileAction) Kind() action.Kind     { return 2000 }
func (a *reconcileAction) ReadSet() world.IDSet  { return a.rs }
func (a *reconcileAction) WriteSet() world.IDSet { return a.ws }
func (a *reconcileAction) MarshalBody() []byte   { return make([]byte, 8) }

func (a *reconcileAction) Apply(tx *world.Tx) bool {
	sum := 0.0
	for _, id := range a.rs {
		v, ok := tx.Read(id)
		if !ok {
			return false
		}
		sum += v[0]
	}
	for _, id := range a.ws {
		tx.Write(id, world.Value{sum + a.delta})
	}
	return true
}

// BenchmarkClientReconcileDeepQueue measures one Algorithm 3 run against
// a 64-deep in-flight queue: an Information Bound drop arrives for the
// oldest action, the client rolls back and re-applies the remaining 63,
// and a fresh submission refills the queue. Compares the incremental
// divergence-set path against the full-union rollback it replaces.
func BenchmarkClientReconcileDeepQueue(b *testing.B) {
	for _, incremental := range []bool{true, false} {
		b.Run(fmt.Sprintf("incremental=%v", incremental), func(b *testing.B) {
			const nObjects, depth = 128, 64
			init := world.NewState()
			for i := 1; i <= nObjects; i++ {
				init.Set(world.ObjectID(i), world.Value{float64(i)})
			}
			cfg := core.DefaultConfig()
			cfg.DisableIncrementalReconcile = !incremental
			cl := core.NewClient(1, cfg, init)

			nth := 0
			submit := func() action.ID {
				nth++
				// Offsets 41 and 83 keep the three ids distinct mod 128.
				a := &reconcileAction{
					id: cl.NextActionID(),
					rs: world.NewIDSet(
						world.ObjectID(1+nth%nObjects),
						world.ObjectID(1+(nth+41)%nObjects),
						world.ObjectID(1+(nth+83)%nObjects)),
					delta: float64(nth),
				}
				a.ws = world.NewIDSet(a.rs[0], a.rs[1])
				cl.Submit(a)
				return a.id
			}
			var ids []action.ID
			for i := 0; i < depth; i++ {
				ids = append(ids, submit())
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := cl.HandleDrop(&wire.Drop{ActID: ids[0]})
				if len(out.DroppedLocal) != 1 {
					b.Fatalf("drop not applied: %+v", out)
				}
				ids = append(ids[:0], ids[1:]...)
				ids = append(ids, submit())
			}
			b.StopTimer()
			if got := cl.Reconciliations(); got < b.N {
				b.Fatalf("reconciliations %d < iterations %d", got, b.N)
			}
		})
	}
}

// BenchmarkTickManyClients measures one steady-state First Bound round —
// every client submits a move, completions from the previous round
// install, and one push cycle fans the closure batches out — comparing
// the sequential scheduler (workers=1) against the auto-sized pool
// (workers=0). The two produce byte-identical pushes.
func BenchmarkTickManyClients(b *testing.B) {
	for _, clients := range []int{256, 1024} {
		for _, workers := range []int{1, 0} {
			b.Run(fmt.Sprintf("clients=%d/workers=%d", clients, workers), func(b *testing.B) {
				wcfg := manhattan.DefaultConfig()
				wcfg.Width, wcfg.Height = 2_000, 2_000
				wcfg.NumWalls = 1000
				wcfg.NumAvatars = clients
				w := manhattan.NewWorld(wcfg)
				init := w.InitialState(0)

				cfg := core.DefaultConfig()
				cfg.Mode = core.ModeFirstBound
				cfg.MaxSpeed = wcfg.Speed
				cfg.DefaultRadius = wcfg.EffectRange
				cfg.PushWorkers = workers
				srv := core.NewServer(cfg, init)
				for i := 1; i <= clients; i++ {
					srv.RegisterClient(action.ClientID(i), 0)
				}
				mirror := init.Clone()
				nextSeq := make([]uint32, clients+1)
				var pending []*wire.Completion
				nowMs := 0.0

				round := func() {
					for _, c := range pending {
						srv.HandleCompletion(c.By, c)
					}
					pending = pending[:0]
					nowMs += 300
					stamp := nowMs - 150 // mid-window: visible to this round's push
					for i := 1; i <= clients; i++ {
						cid := action.ClientID(i)
						nextSeq[i]++
						mv, err := w.NewMove(action.ID{Client: cid, Seq: nextSeq[i]},
							manhattan.AvatarID(i), mirror)
						if err != nil {
							b.Fatal(err)
						}
						out := srv.HandleSubmit(cid, &wire.Submit{Env: action.Envelope{Origin: cid, Act: mv}}, stamp)
						if out.Dropped {
							continue
						}
						for _, rep := range out.Replies {
							batch, ok := rep.Msg.(*wire.Batch)
							if !ok {
								continue
							}
							for _, env := range batch.Envs {
								if env.Act.ID() == mv.ID() {
									res := action.Eval(mv, world.StateView{S: mirror})
									for _, wr := range res.Writes {
										mirror.Set(wr.ID, wr.Val)
									}
									pending = append(pending, &wire.Completion{Seq: env.Seq, By: cid, Res: res})
								}
							}
						}
					}
					srv.Tick(nowMs)
				}
				round() // warm the scratch pools and client positions

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					round()
				}
			})
		}
	}
}

// --- sharded serializer: epoch rounds through shard.Router ---

// shardBenchAction is the disjoint-group workload unit shared with the
// shardscale experiment: read and write the group's hub plus the
// client's own object, so actions conflict densely inside a group and
// never across groups, and each group's spatial position pins it to one
// shard lane.
type shardBenchAction struct {
	id       action.ID
	hub, own world.ObjectID
	pos      geom.Vec
}

const kindShardBench action.Kind = 1600

func (a *shardBenchAction) ID() action.ID         { return a.id }
func (a *shardBenchAction) Kind() action.Kind     { return kindShardBench }
func (a *shardBenchAction) ReadSet() world.IDSet  { return world.IDSet{a.hub, a.own} }
func (a *shardBenchAction) WriteSet() world.IDSet { return world.IDSet{a.hub, a.own} }
func (a *shardBenchAction) MarshalBody() []byte   { return nil }
func (a *shardBenchAction) Influence() geom.Circle {
	return geom.Circle{Center: a.pos, R: 5}
}

func (a *shardBenchAction) Apply(tx *world.Tx) bool {
	h, ok := tx.Read(a.hub)
	if !ok {
		return false
	}
	o, ok := tx.Read(a.own)
	if !ok {
		return false
	}
	tx.Write(a.hub, world.Value{h[0] + 1})
	tx.Write(a.own, world.Value{o[0] + h[0]})
	return true
}

// benchShardedRounds drives shard.NewEngine(cfg) through synchronized
// rounds — every client submits once, the epoch flushes, completions
// arrive next round — reporting per-round cost (one round = clients
// submissions plus a flush, plus a push tick when tick is set).
func benchShardedRounds(b *testing.B, shards int, mode core.Mode, tick bool) {
	const groups, perGroup = 16, 16
	clients := groups * perGroup

	cfg := core.DefaultConfig()
	cfg.Mode = mode
	cfg.Threshold = 1e12
	cfg.Shards = shards
	cfg.ShardCellSize = 100

	init := world.NewState()
	hubOf := func(g int) world.ObjectID { return world.ObjectID(g*(perGroup+1) + 1) }
	ownOf := func(g, i int) world.ObjectID { return world.ObjectID(g*(perGroup+1) + 2 + i) }
	for g := 0; g < groups; g++ {
		init.Set(hubOf(g), world.Value{0})
		for i := 0; i < perGroup; i++ {
			init.Set(ownOf(g, i), world.Value{0})
		}
	}
	eng := shard.NewEngine(cfg, init)
	if c, ok := eng.(interface{ Close() }); ok {
		defer c.Close()
	}
	for c := 1; c <= clients; c++ {
		eng.RegisterClient(action.ClientID(c), 0)
	}

	mirror := init.Clone()
	nextSeq := make([]uint32, clients+1)
	var pending []*wire.Completion
	nowMs := 0.0

	round := func() {
		for _, c := range pending {
			eng.HandleMsg(c.By, c, nowMs)
		}
		pending = pending[:0]
		nowMs += 300

		acts := make(map[action.ID]*shardBenchAction, clients)
		outs := make([]core.ServerOutput, 0, clients+2)
		for c := 1; c <= clients; c++ {
			cid := action.ClientID(c)
			g := (c - 1) / perGroup
			nextSeq[c]++
			a := &shardBenchAction{
				id:  action.ID{Client: cid, Seq: nextSeq[c]},
				hub: hubOf(g), own: ownOf(g, (c-1)%perGroup),
				pos: geom.Vec{X: float64(g)*300 + 50, Y: float64(g)*300 + 50},
			}
			acts[a.id] = a
			outs = append(outs, eng.HandleMsg(cid, &wire.Submit{Env: action.Envelope{Origin: cid, Act: a}}, nowMs))
		}
		if f, ok := eng.(core.Flusher); ok {
			outs = append(outs, f.Flush())
		}
		if tick {
			outs = append(outs, eng.Tick(nowMs))
		}
		for _, out := range outs {
			for _, rep := range out.Replies {
				batch, ok := rep.Msg.(*wire.Batch)
				if !ok {
					continue
				}
				for _, env := range batch.Envs {
					a, mine := acts[env.Act.ID()]
					if !mine || env.Origin != rep.To {
						continue
					}
					res := action.Eval(a, world.StateView{S: mirror})
					for _, wr := range res.Writes {
						mirror.Set(wr.ID, wr.Val)
					}
					pending = append(pending, &wire.Completion{Seq: env.Seq, By: rep.To, Res: res})
					delete(acts, env.Act.ID())
				}
			}
		}
	}
	round() // warm scratch pools, lanes, and client positions

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
}

// BenchmarkShardedSubmit is the submission path per epoch round: 256
// clients in 16 disjoint groups, conflict-dense closures, shard counts
// against the single lane.
func BenchmarkShardedSubmit(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedRounds(b, shards, core.ModeIncomplete, false)
		})
	}
}

// BenchmarkShardedTick adds the First Bound push cycle: every round
// ends in a Tick, whose epoch-flush barrier and push fan-out both run
// through the router.
func BenchmarkShardedTick(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedRounds(b, shards, core.ModeFirstBound, true)
		})
	}
}
