module seve

go 1.22
